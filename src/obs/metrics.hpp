// Metrics registry: counters, gauges, and bucketed histograms for the
// observability layer (docs/observability.md).
//
// Design constraints, in order:
//  1. Zero overhead when disabled.  Engines hold a nullable ObsSink pointer
//     (obs/sink.hpp); every hot-path hook is one predictable branch when no
//     sink is attached, and compiles out entirely under PPK_OBS_ENABLED=0.
//  2. Deterministic aggregation.  A registry is single-threaded by design;
//     concurrent trials each fill their own registry and merge() afterwards.
//     Every merge operation is commutative and associative (counters add,
//     gauges take the max, histograms add per bucket), so the merged result
//     is identical regardless of thread interleaving -- bit-reproducible
//     reports from parallel runs.
//  3. One bucketing implementation.  Histogram supports both the linear
//     fixed-width layout (the stabilization-distribution plots; the
//     analysis::Histogram facade delegates here) and the HDR-style
//     log2-with-subbuckets layout used for metrics whose range spans many
//     orders of magnitude (null-run lengths, batch sizes, per-trial
//     interaction totals).  Bucket arithmetic, saturation, merging,
//     quantiles, and rendering are written exactly once.

#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "util/assert.hpp"

namespace ppk::obs {

/// Monotonically increasing event count.  Merge semantics: sum.
class Counter {
 public:
  /// Adds `delta` occurrences (default one).
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }

  /// Current total.
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Commutative merge: totals add.
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (population size, current epoch, ...).
/// Merge semantics: maximum over the merged registries -- the only
/// order-independent choice for a "latest value" metric, and the useful one
/// for the gauges the engines export (peak population, furthest epoch).
class Gauge {
 public:
  /// Overwrites the gauge with `value`.
  void set(std::int64_t value) noexcept {
    value_ = value;
    present_ = true;
  }

  /// Raises the gauge to `value` if larger (or if never set).
  void record_max(std::int64_t value) noexcept {
    if (!present_ || value > value_) set(value);
  }

  /// Current value (0 if never set; see present()).
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

  /// True once set() or record_max() has been called.
  [[nodiscard]] bool present() const noexcept { return present_; }

  /// Commutative merge: element-wise maximum.
  void merge(const Gauge& other) noexcept {
    if (other.present_) record_max(other.value_);
  }

 private:
  std::int64_t value_ = 0;
  bool present_ = false;
};

/// Bucketed histogram -- the single bucketing implementation in the repo.
///
/// Two layouts share every algorithm (add, saturation, bounds, merge,
/// quantile, ASCII rendering):
///
///  - linear(lo, hi, buckets): `buckets` equal-width bins over [lo, hi);
///    values outside the range land in the saturated edge buckets.  This is
///    the layout of the stabilization-distribution plots
///    (analysis::Histogram is a facade over it).
///
///  - log2(sub_bits): HDR-style log-bucketed layout over the non-negative
///    integers.  With S = 2^sub_bits sub-buckets per octave, values below S
///    are exact and every larger value lands in a bucket of relative width
///    <= 1/S (6.25% at the default sub_bits = 4).  Buckets are allocated
///    lazily, so an empty histogram costs a few dozen bytes regardless of
///    the value range.  This is the layout the metrics registry hands out.
class Histogram {
 public:
  /// Bucket layout selector; see the class comment.
  enum class Layout { kLinear, kLog2 };

  /// Linear layout: [lo, hi) split evenly `buckets` ways, saturating edges.
  static Histogram linear(double lo, double hi, std::size_t buckets) {
    PPK_EXPECTS(hi > lo);
    PPK_EXPECTS(buckets >= 1);
    Histogram h;
    h.layout_ = Layout::kLinear;
    h.lo_ = lo;
    h.hi_ = hi;
    h.counts_.assign(buckets, 0);
    return h;
  }

  /// Log2 layout with 2^sub_bits sub-buckets per octave (sub_bits in
  /// [0, 8]).
  static Histogram log2(unsigned sub_bits = 4) {
    PPK_EXPECTS(sub_bits <= 8);
    Histogram h;
    h.layout_ = Layout::kLog2;
    h.sub_bits_ = sub_bits;
    return h;
  }

  /// Active layout.
  [[nodiscard]] Layout layout() const noexcept { return layout_; }

  /// Records one real-valued sample (log2 layout clamps negatives to 0 and
  /// truncates to an integer).
  void add(double x) {
    if (layout_ == Layout::kLinear) {
      const double clamped = std::min(std::max(x, lo_), hi_);
      auto bucket = static_cast<std::size_t>(
          (clamped - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      bucket = std::min(bucket, counts_.size() - 1);
      ++counts_[bucket];
      ++total_;
      return;
    }
    record(x <= 0.0 ? 0 : static_cast<std::uint64_t>(x));
  }

  /// Records one integer sample (the metrics fast path; linear layout
  /// forwards to add()).
  void record(std::uint64_t v) {
    if (layout_ == Layout::kLinear) {
      add(static_cast<double>(v));
      return;
    }
    const std::size_t bucket = log_bucket(v);
    if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
    ++counts_[bucket];
    ++total_;
  }

  /// Bulk-restores `count` samples directly into bucket `bucket` --
  /// checkpoint deserialization, the inverse of reading counts().  Exact by
  /// construction (no re-bucketing of a representative value).  The bucket
  /// must exist in the linear layout; log2 buckets materialize on demand.
  void add_bucket_count(std::size_t bucket, std::uint64_t count) {
    if (layout_ == Layout::kLinear) {
      PPK_EXPECTS(bucket < counts_.size());
    } else if (bucket >= counts_.size()) {
      counts_.resize(bucket + 1, 0);
    }
    counts_[bucket] += count;
    total_ += count;
  }

  /// Log2-layout sub-bucket bits (meaningful only for that layout); with
  /// the layout this fully determines the bucketing, which is what
  /// checkpoint serialization persists.
  [[nodiscard]] unsigned sub_bits() const noexcept { return sub_bits_; }

  /// Linear-layout inclusive lower range bound (meaningful only for that
  /// layout).
  [[nodiscard]] double linear_lo() const noexcept { return lo_; }

  /// Linear-layout exclusive upper range bound (meaningful only for that
  /// layout).
  [[nodiscard]] double linear_hi() const noexcept { return hi_; }

  /// Number of recorded samples.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Per-bucket sample counts (log2 layout: trailing empty buckets are not
  /// materialized).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Inclusive lower bound of bucket `bucket`.
  [[nodiscard]] double bucket_lo(std::size_t bucket) const {
    if (layout_ == Layout::kLinear) {
      return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                       static_cast<double>(counts_.size());
    }
    return static_cast<double>(log_bucket_lo(bucket));
  }

  /// Exclusive upper bound of bucket `bucket`.
  [[nodiscard]] double bucket_hi(std::size_t bucket) const {
    if (layout_ == Layout::kLinear) return bucket_lo(bucket + 1);
    return static_cast<double>(log_bucket_lo(bucket + 1));
  }

  /// Merges another histogram of the identical layout and parameters; per
  /// bucket, counts add (commutative, so merge order never matters).
  void merge(const Histogram& other) {
    PPK_EXPECTS(layout_ == other.layout_);
    if (layout_ == Layout::kLinear) {
      PPK_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_ &&
                  counts_.size() == other.counts_.size());
    } else {
      PPK_EXPECTS(sub_bits_ == other.sub_bits_);
      if (other.counts_.size() > counts_.size()) {
        counts_.resize(other.counts_.size(), 0);
      }
    }
    for (std::size_t b = 0; b < other.counts_.size(); ++b) {
      counts_[b] += other.counts_[b];
    }
    total_ += other.total_;
  }

  /// Bucket-resolution quantile estimate: the lower bound of the first
  /// bucket whose cumulative count reaches q * total (q in [0, 1]).
  [[nodiscard]] double quantile(double q) const {
    PPK_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      cumulative += counts_[b];
      if (static_cast<double>(cumulative) >= target && counts_[b] > 0) {
        return bucket_lo(b);
      }
    }
    return bucket_lo(counts_.empty() ? 0 : counts_.size() - 1);
  }

  /// ASCII rendering: one row per (non-empty, for log2) bucket, bar length
  /// proportional to the count, `width` characters for the largest bucket.
  void print(std::ostream& out, std::size_t width = 50) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (layout_ == Layout::kLog2 && counts_[b] == 0) continue;
      const auto bar = static_cast<std::size_t>(
          static_cast<double>(counts_[b]) / static_cast<double>(peak) *
          static_cast<double>(width));
      out << format_bound(bucket_lo(b)) << " .. " << format_bound(bucket_hi(b))
          << "  " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
    }
  }

  /// Emits {"total": n, "buckets": [{"lo", "hi", "count"}...]} (non-empty
  /// buckets only) into an open JSON writer.
  void write_json(io::JsonWriter& json) const {
    json.begin_object();
    json.member("total", total_);
    json.key("buckets");
    json.begin_array();
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      json.begin_object();
      json.member("lo", bucket_lo(b));
      json.member("hi", bucket_hi(b));
      json.member("count", counts_[b]);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

 private:
  Histogram() = default;

  [[nodiscard]] std::size_t log_bucket(std::uint64_t v) const noexcept {
    const std::uint64_t sub = 1ULL << sub_bits_;
    if (v < sub) return static_cast<std::size_t>(v);
    const unsigned e =
        static_cast<unsigned>(std::bit_width(v)) - 1u - sub_bits_;
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(sub) +
           static_cast<std::size_t>(v >> e);
  }

  [[nodiscard]] std::uint64_t log_bucket_lo(std::size_t bucket) const {
    const std::uint64_t sub = 1ULL << sub_bits_;
    if (bucket < sub) return bucket;
    const std::uint64_t e = bucket / sub - 1;
    const std::uint64_t mantissa = bucket - e * sub;  // in [sub, 2*sub)
    return mantissa << e;
  }

  static std::string format_bound(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%12.0f", value);
    return buffer;
  }

  Layout layout_ = Layout::kLog2;
  double lo_ = 0.0;                    // linear layout only
  double hi_ = 0.0;                    // linear layout only
  unsigned sub_bits_ = 4;              // log2 layout only
  std::vector<std::uint64_t> counts_;  // log2: grown lazily
  std::uint64_t total_ = 0;
};

/// Named metrics for one execution context (one engine run, one trial).
///
/// Lookup by name is a map operation; callers on hot paths resolve their
/// instruments once and keep the returned reference (ObsSink does exactly
/// this).  Registries are intentionally not thread-safe: parallel drivers
/// give each worker its own registry and merge() afterwards, which is both
/// faster (no shared cache line) and deterministic (all merge operations
/// commute).  Emission orders instruments by name, so two registries with
/// equal contents serialize identically.
class MetricsRegistry {
 public:
  /// Returns the counter `name`, creating it at zero on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }

  /// Returns the gauge `name`, creating it unset on first use.
  Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }

  /// Returns the histogram `name`, creating it with the default log2
  /// layout on first use.
  Histogram& histogram(std::string_view name) {
    auto it = histograms_.find(std::string(name));
    if (it == histograms_.end()) {
      it = histograms_.emplace(std::string(name), Histogram::log2()).first;
    }
    return it->second;
  }

  /// Returns the histogram `name`, creating it from `prototype` (layout and
  /// parameters, not samples) on first use.
  Histogram& histogram(std::string_view name, const Histogram& prototype) {
    auto it = histograms_.find(std::string(name));
    if (it == histograms_.end()) {
      Histogram empty = prototype.layout() == Histogram::Layout::kLinear
                            ? prototype
                            : Histogram::log2();
      it = histograms_.emplace(std::string(name), std::move(empty)).first;
    }
    return it->second;
  }

  /// True iff no instrument has been created.
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// All counters, ordered by name.
  [[nodiscard]] const std::map<std::string, Counter>& counters()
      const noexcept {
    return counters_;
  }

  /// All gauges, ordered by name.
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }

  /// All histograms, ordered by name.
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Folds another registry in: counters add, gauges take the max,
  /// histograms add per bucket.  Instruments missing on either side are
  /// created.  Commutative and associative, so any merge order over any
  /// partition of trials produces the same registry.
  void merge(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
    for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
    for (const auto& [name, h] : other.histograms_) {
      auto it = histograms_.find(name);
      if (it == histograms_.end()) {
        histograms_.emplace(name, h);
      } else {
        it->second.merge(h);
      }
    }
  }

  /// Emits {"counters": {...}, "gauges": {...}, "histograms": {...}} into
  /// an open JSON writer, each section sorted by instrument name.
  void write_json(io::JsonWriter& json) const {
    json.begin_object();
    json.key("counters");
    json.begin_object();
    for (const auto& [name, c] : counters_) json.member(name, c.value());
    json.end_object();
    json.key("gauges");
    json.begin_object();
    for (const auto& [name, g] : gauges_) {
      json.member(name, static_cast<std::int64_t>(g.value()));
    }
    json.end_object();
    json.key("histograms");
    json.begin_object();
    for (const auto& [name, h] : histograms_) {
      json.key(name);
      h.write_json(json);
    }
    json.end_object();
    json.end_object();
  }

  /// Emits "kind,name,lo,hi,value" CSV rows (scalar instruments leave
  /// lo/hi empty; histograms write one row per non-empty bucket).
  void write_csv(std::ostream& out) const {
    out << "kind,name,lo,hi,value\n";
    for (const auto& [name, c] : counters_) {
      out << "counter," << name << ",,," << c.value() << '\n';
    }
    for (const auto& [name, g] : gauges_) {
      out << "gauge," << name << ",,," << g.value() << '\n';
    }
    for (const auto& [name, h] : histograms_) {
      const auto& counts = h.counts();
      for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0) continue;
        out << "histogram," << name << ',' << h.bucket_lo(b) << ','
            << h.bucket_hi(b) << ',' << counts[b] << '\n';
      }
    }
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ppk::obs
