// Counting modulo m (the classic remainder predicate aggregation): every
// agent starts holding the value 1; meeting value-holders merge their
// values mod m, with the responder collapsing to a value-less sink.
//
//   (u, v)    -> ((u + v) mod m, sink)     for value states u, v
//   (u, sink) -> (u, sink)                  null
//
// Under global fairness all mass merges into a single holder whose value is
// n mod m; the configuration is then silent.  Asymmetric (merging two equal
// values keeps one holder).  Used to exercise the substrate on a protocol
// whose state count is a parameter unrelated to its group count.

#pragma once

#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::protocols {

class ModuloCounterProtocol final : public pp::Protocol {
 public:
  /// Requires 2 <= m <= 1024.  States: value v in [0, m) = state v;
  /// sink = state m.
  explicit ModuloCounterProtocol(std::uint32_t m) : m_(m) {
    PPK_EXPECTS(m >= 2 && m <= 1024);
  }

  [[nodiscard]] std::string name() const override {
    return "mod-counter(m=" + std::to_string(m_) + ")";
  }
  [[nodiscard]] pp::StateId num_states() const override {
    return static_cast<pp::StateId>(m_ + 1);
  }
  /// Every agent contributes 1.
  [[nodiscard]] pp::StateId initial_state() const override {
    return static_cast<pp::StateId>(1 % m_);
  }

  [[nodiscard]] pp::StateId sink() const {
    return static_cast<pp::StateId>(m_);
  }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    if (p == sink() || q == sink()) return {p, q};
    return {static_cast<pp::StateId>((p + q) % m_), sink()};
  }

  /// Groups: holders output their value; sinks form group m.
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override { return s; }
  [[nodiscard]] pp::GroupId num_groups() const override {
    return static_cast<pp::GroupId>(m_ + 1);
  }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return s == sink() ? "sink" : "v" + std::to_string(s);
  }

 private:
  std::uint32_t m_;
};

}  // namespace ppk::protocols
