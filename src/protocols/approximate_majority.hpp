// The 3-state approximate majority protocol (Angluin, Aspnes, Eisenstat
// 2008): opinions X and Y with a blank intermediate B.
//
//   (X, Y) -> (X, B)    an opinion converts a disagreeing partner to blank
//   (X, B) -> (X, X)    blanks adopt the opinion they meet
//   (Y, B) -> (Y, Y)
//
// (each rule also in the mirrored orientation).  Converges to consensus on
// the initial majority w.h.p. when the margin is large; under global
// fairness it always reaches *some* silent consensus configuration, which
// is what the verifier checks.

#pragma once

#include "pp/protocol.hpp"

namespace ppk::protocols {

class ApproximateMajorityProtocol final : public pp::Protocol {
 public:
  static constexpr pp::StateId kX = 0;
  static constexpr pp::StateId kY = 1;
  static constexpr pp::StateId kBlank = 2;

  [[nodiscard]] std::string name() const override {
    return "approximate-majority";
  }
  [[nodiscard]] pp::StateId num_states() const override { return 3; }
  [[nodiscard]] pp::StateId initial_state() const override { return kBlank; }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    if (p == kX && q == kY) return {kX, kBlank};
    if (p == kY && q == kX) return {kY, kBlank};
    if (p == kBlank && q != kBlank) return {q, q};
    if (q == kBlank && p != kBlank) return {p, p};
    return {p, q};
  }

  /// Groups: 0 = leaning X, 1 = leaning Y, 2 = undecided.
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override { return s; }
  [[nodiscard]] pp::GroupId num_groups() const override { return 3; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    switch (s) {
      case kX: return "x";
      case kY: return "y";
      default: return "b";
    }
  }
};

}  // namespace ppk::protocols
