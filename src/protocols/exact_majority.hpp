// The 4-state exact majority protocol (Draief & Vojnovic / Mertzios et
// al.): strong opinions A, B and weak opinions a, b.
//
//   (A, B) -> (a, b)    strong opposites cancel to weak
//   (A, b) -> (A, a)    strong opinions convert weak opposites
//   (B, a) -> (B, b)
//
// (plus mirrors).  With a strict initial majority the protocol stabilizes
// (silently) so that every agent's output matches the majority opinion; on
// a tie all agents end weak and the output is meaningless -- exactly the
// protocol's published behaviour, which the tests pin down.

#pragma once

#include <optional>

#include "pp/protocol.hpp"

namespace ppk::protocols {

class ExactMajorityProtocol final : public pp::Protocol {
 public:
  static constexpr pp::StateId kStrongA = 0;
  static constexpr pp::StateId kStrongB = 1;
  static constexpr pp::StateId kWeakA = 2;
  static constexpr pp::StateId kWeakB = 3;

  [[nodiscard]] std::string name() const override { return "exact-majority"; }
  [[nodiscard]] pp::StateId num_states() const override { return 4; }
  [[nodiscard]] pp::StateId initial_state() const override { return kStrongA; }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    auto rule = [](pp::StateId x, pp::StateId y)
        -> std::optional<pp::Transition> {
      if (x == kStrongA && y == kStrongB) return pp::Transition{kWeakA, kWeakB};
      if (x == kStrongA && y == kWeakB) return pp::Transition{kStrongA, kWeakA};
      if (x == kStrongB && y == kWeakA) return pp::Transition{kStrongB, kWeakB};
      return std::nullopt;
    };
    if (auto t = rule(p, q)) return *t;
    if (auto t = rule(q, p)) return {t->responder, t->initiator};
    return {p, q};
  }

  /// Groups: 0 = outputs "A wins", 1 = outputs "B wins".
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return (s == kStrongA || s == kWeakA) ? pp::GroupId{0} : pp::GroupId{1};
  }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    switch (s) {
      case kStrongA: return "A";
      case kStrongB: return "B";
      case kWeakA: return "a";
      default: return "b";
    }
  }
};

}  // namespace ppk::protocols
