// One-way epidemic (broadcast): an informed agent infects any susceptible
// partner.
//
//   (I, S) -> (I, I)     (and mirrored)
//
// The classic calibration protocol: starting from one informed agent, the
// expected number of uniform ordered-pair interactions until everyone is
// informed has the closed form
//
//   E = sum_{i=1..n-1} n(n-1) / (2 i (n-i))
//     = n(n-1)/2 * (2/n) * H_{n-1} ... = (n-1) * H_{n-1}   (exactly),
//
// because with i informed the probability a drawn ordered pair is a
// mixed (I,S)/(S,I) pair is 2 i (n-i) / (n(n-1)).  The test suite uses
// this to validate both the simulator and the Markov module against
// textbook theory that is independent of this repository.

#pragma once

#include "pp/protocol.hpp"

namespace ppk::protocols {

class EpidemicProtocol final : public pp::Protocol {
 public:
  static constexpr pp::StateId kInformed = 0;
  static constexpr pp::StateId kSusceptible = 1;

  [[nodiscard]] std::string name() const override { return "epidemic"; }
  [[nodiscard]] pp::StateId num_states() const override { return 2; }
  [[nodiscard]] pp::StateId initial_state() const override {
    return kSusceptible;
  }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    if (p == kInformed || q == kInformed) return {kInformed, kInformed};
    return {p, q};
  }

  /// Groups: 0 = informed, 1 = susceptible.
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override { return s; }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return s == kInformed ? "I" : "S";
  }

  /// The closed-form expected interactions to full infection from one
  /// informed agent among n.
  [[nodiscard]] static double expected_interactions(std::uint32_t n) {
    double total = 0.0;
    for (std::uint32_t i = 1; i < n; ++i) {
      total += static_cast<double>(n) * static_cast<double>(n - 1) /
               (2.0 * static_cast<double>(i) * static_cast<double>(n - i));
    }
    return total;
  }
};

}  // namespace ppk::protocols
