// Threshold predicate protocol (Angluin, Aspnes, Diamadi, Fischer, Peralta
// 2006, simplified to one input variable): decide whether the number of
// agents that started with input 1 is at least a constant threshold T.
//
// Each agent holds a saturating counter value in [0, T] plus an output
// bit.  When two agents meet, the initiator absorbs the responder's value
// (saturating at T) and the responder drops to 0; both agents then set
// their output to [max of the two post-values' saturation] -- concretely,
// output 1 iff the absorbing agent reached T.  Once any agent reaches T
// the value T spreads its output by epidemic, and T is never destroyed,
// so under global fairness all outputs stabilize to the correct verdict.
//
// States: (value v in [0, T], output bit).  2(T+1) states.

#pragma once

#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::protocols {

class ThresholdProtocol final : public pp::Protocol {
 public:
  /// Decides "#(input 1 agents) >= threshold"; 1 <= threshold <= 500.
  explicit ThresholdProtocol(std::uint32_t threshold) : threshold_(threshold) {
    PPK_EXPECTS(threshold >= 1 && threshold <= 500);
  }

  [[nodiscard]] std::string name() const override {
    return "threshold(T=" + std::to_string(threshold_) + ")";
  }

  [[nodiscard]] pp::StateId num_states() const override {
    return static_cast<pp::StateId>(2 * (threshold_ + 1));
  }

  /// Agents with input 0; agents with input 1 start in state(1, false)
  /// (or state(T, true) when T == 1).
  [[nodiscard]] pp::StateId initial_state() const override {
    return state(0, false);
  }

  /// The designated start state for an input-1 agent.
  [[nodiscard]] pp::StateId one_state() const {
    return threshold_ == 1 ? state(1, true) : state(1, false);
  }

  /// Encodes (value, output).
  [[nodiscard]] pp::StateId state(std::uint32_t value, bool output) const {
    PPK_EXPECTS(value <= threshold_);
    return static_cast<pp::StateId>(value * 2 + (output ? 1 : 0));
  }

  [[nodiscard]] std::uint32_t value_of(pp::StateId s) const { return s / 2; }
  [[nodiscard]] bool output_of(pp::StateId s) const { return (s & 1) != 0; }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    const std::uint32_t vp = value_of(p);
    const std::uint32_t vq = value_of(q);
    const std::uint32_t sum = vp + vq;
    const std::uint32_t merged = sum > threshold_ ? threshold_ : sum;
    const bool reached = merged >= threshold_;
    // Output propagates: true once anyone has seen the threshold.
    const bool out = reached || output_of(p) || output_of(q);
    const pp::StateId p_next = state(merged, out);
    const pp::StateId q_next = state(0, out);
    if (p_next == p && q_next == q) return {p, q};
    return {p_next, q_next};
  }

  /// Groups: 0 = outputs "below threshold", 1 = outputs "reached".
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return output_of(s) ? pp::GroupId{1} : pp::GroupId{0};
  }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return "(" + std::to_string(value_of(s)) + (output_of(s) ? ",+" : ",-") +
           ")";
  }

  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

 private:
  std::uint32_t threshold_;
};

}  // namespace ppk::protocols
