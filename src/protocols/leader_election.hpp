// The folklore 2-state leader election protocol: all agents start as
// leaders and pairs of leaders demote one of them.
//
//   (L, L) -> (L, F)
//
// Stabilizes (silently) to exactly one leader under any fairness notion.
// Deliberately asymmetric -- it is the standard example of a protocol that
// *requires* the initiator/responder distinction, and the test suite uses
// it to validate the symmetry checker and the verifier.

#pragma once

#include "pp/protocol.hpp"

namespace ppk::protocols {

class LeaderElectionProtocol final : public pp::Protocol {
 public:
  static constexpr pp::StateId kLeader = 0;
  static constexpr pp::StateId kFollower = 1;

  [[nodiscard]] std::string name() const override { return "leader-election"; }
  [[nodiscard]] pp::StateId num_states() const override { return 2; }
  [[nodiscard]] pp::StateId initial_state() const override { return kLeader; }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    if (p == kLeader && q == kLeader) return {kLeader, kFollower};
    return {p, q};
  }

  [[nodiscard]] pp::GroupId group(pp::StateId s) const override { return s; }
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return s == kLeader ? "L" : "F";
  }
};

}  // namespace ppk::protocols
