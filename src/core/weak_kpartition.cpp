#include "core/weak_kpartition.hpp"

#include <limits>

#include "util/assert.hpp"

namespace ppk::core {

WeakKPartitionProtocol::WeakKPartitionProtocol(pp::GroupId k) : k_(k) {
  PPK_EXPECTS(k >= 2);
  // State layout: [initial, released, g1..gk, b1..bk, d1..d(k-1)].
  PPK_EXPECTS(2 + 3 * static_cast<std::uint32_t>(k) - 1 <=
              std::numeric_limits<pp::StateId>::max());
}

std::string WeakKPartitionProtocol::name() const {
  return "weak-k-partition(k=" + std::to_string(k_) + ")";
}

pp::StateId WeakKPartitionProtocol::num_states() const {
  return static_cast<pp::StateId>(3 * k_ + 1);
}

pp::StateId WeakKPartitionProtocol::g(pp::GroupId x) const {
  PPK_EXPECTS(x >= 1 && x <= k_);
  return static_cast<pp::StateId>(2 + (x - 1));
}

pp::StateId WeakKPartitionProtocol::b(pp::GroupId p) const {
  PPK_EXPECTS(p >= 1 && p <= k_);
  return static_cast<pp::StateId>(2 + k_ + (p - 1));
}

pp::StateId WeakKPartitionProtocol::d(pp::GroupId q) const {
  PPK_EXPECTS(q >= 1 && q <= k_ - 1);
  return static_cast<pp::StateId>(2 + 2 * k_ + (q - 1));
}

bool WeakKPartitionProtocol::is_g(pp::StateId s) const noexcept {
  return s >= 2 && s < 2 + k_;
}

bool WeakKPartitionProtocol::is_b(pp::StateId s) const noexcept {
  return s >= 2 + k_ && s < 2 + 2 * k_;
}

bool WeakKPartitionProtocol::is_d(pp::StateId s) const noexcept {
  return s >= 2 + 2 * k_ && s < 3 * k_ + 1;
}

pp::GroupId WeakKPartitionProtocol::index_of(pp::StateId s) const {
  PPK_EXPECTS(!is_free(s));
  if (is_g(s)) return static_cast<pp::GroupId>(s - 2 + 1);
  if (is_b(s)) return static_cast<pp::GroupId>(s - (2 + k_) + 1);
  return static_cast<pp::GroupId>(s - (2 + 2 * k_) + 1);
}

std::optional<pp::Transition> WeakKPartitionProtocol::rule(
    pp::StateId p, pp::StateId q) const {
  // Rule 1: bootstrap.  The initiator commits to group 1; the responder
  // becomes the cyclic builder with group 2 up next.  (Asymmetric on the
  // diagonal -- that is the point: a symmetric rule here reintroduces the
  // flip livelock.)
  if (p == kInitial && q == kInitial) {
    return pp::Transition{g(1), b(2)};
  }
  // Rule 2: assignment.  A builder meeting a free agent (initial or
  // released) commits it to the builder's current group and advances the
  // builder cyclically.
  if (is_b(p) && is_free(q)) {
    const pp::GroupId cur = index_of(p);
    const pp::GroupId next = static_cast<pp::GroupId>(cur % k_ + 1);
    return pp::Transition{b(next), g(cur)};
  }
  // Rule 3: builder merge.  The initiator survives unchanged; the loser
  // turns into a demolisher that must undo its current (partial) lap:
  // groups q-1, q-2, ..., 1 each gained one member since its last wrap.
  if (is_b(p) && is_b(q)) {
    const pp::GroupId loser = index_of(q);
    const pp::StateId demoted = loser >= 2 ? d(loser - 1) : kReleased;
    return pp::Transition{p, demoted};
  }
  // Rule 4: demolition.  d_j frees one member of group j and steps down;
  // d_1 frees one member of group 1 and retires.
  if (is_d(p) && is_g(q) && index_of(p) == index_of(q)) {
    const pp::GroupId j = index_of(p);
    const pp::StateId down = j >= 2 ? d(j - 1) : kReleased;
    return pp::Transition{down, kReleased};
  }
  return std::nullopt;
}

pp::Transition WeakKPartitionProtocol::delta(pp::StateId p,
                                             pp::StateId q) const {
  PPK_EXPECTS(p < num_states() && q < num_states());
  if (auto t = rule(p, q)) return *t;
  if (auto t = rule(q, p)) return pp::Transition{t->responder, t->initiator};
  return pp::Transition{p, q};  // null interaction
}

pp::GroupId WeakKPartitionProtocol::group(pp::StateId s) const {
  PPK_EXPECTS(s < num_states());
  // Free agents and demolishers are counted in group 1 until committed;
  // a builder b_p outputs its next assignment target p.  At silence the
  // free/demolisher states are gone and exactly one builder remains, so
  // only g and b outputs shape the final partition.
  if (is_g(s) || is_b(s)) return static_cast<pp::GroupId>(index_of(s) - 1);
  return 0;
}

std::string WeakKPartitionProtocol::state_name(pp::StateId s) const {
  PPK_EXPECTS(s < num_states());
  if (s == kInitial) return "initial";
  if (s == kReleased) return "released";
  const auto idx = std::to_string(index_of(s));
  if (is_g(s)) return "g" + idx;
  if (is_b(s)) return "b" + idx;
  return "d" + idx;
}

}  // namespace ppk::core
