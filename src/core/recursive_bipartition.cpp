#include "core/recursive_bipartition.hpp"

#include "util/assert.hpp"

namespace ppk::core {

RecursiveBipartitionProtocol::RecursiveBipartitionProtocol(unsigned h)
    : h_(h), leaf_offset_((1u << (h + 1)) - 2) {
  PPK_EXPECTS(h >= 1 && h <= 8);
}

std::string RecursiveBipartitionProtocol::name() const {
  return "recursive-bipartition(k=" + std::to_string(1u << h_) + ")";
}

pp::StateId RecursiveBipartitionProtocol::num_states() const {
  return static_cast<pp::StateId>(leaf_offset_ + (1u << h_));  // 3k - 2
}

pp::GroupId RecursiveBipartitionProtocol::num_groups() const {
  return static_cast<pp::GroupId>(1u << h_);
}

pp::StateId RecursiveBipartitionProtocol::free_state(unsigned layer,
                                                     std::uint32_t prefix,
                                                     unsigned parity) const {
  PPK_EXPECTS(layer >= 1 && layer <= h_);
  PPK_EXPECTS(prefix < (1u << (layer - 1)));
  PPK_EXPECTS(parity <= 1);
  // Layer l starts at sum_{l' < l} 2^l' = 2^l - 2.
  const std::uint32_t offset = (1u << layer) - 2;
  return static_cast<pp::StateId>(offset + prefix * 2 + parity);
}

pp::StateId RecursiveBipartitionProtocol::leaf_state(
    std::uint32_t label) const {
  PPK_EXPECTS(label < (1u << h_));
  return static_cast<pp::StateId>(leaf_offset_ + label);
}

RecursiveBipartitionProtocol::Decoded RecursiveBipartitionProtocol::decode(
    pp::StateId s) const {
  PPK_EXPECTS(s < num_states());
  if (s >= leaf_offset_) {
    return Decoded{true, 0, static_cast<std::uint32_t>(s - leaf_offset_), 0};
  }
  // Invert: layer l occupies [2^l - 2, 2^(l+1) - 2).
  unsigned layer = 1;
  while (static_cast<std::uint32_t>(s) >= (1u << (layer + 1)) - 2) ++layer;
  const std::uint32_t within = s - ((1u << layer) - 2);
  return Decoded{false, layer, within / 2, within % 2};
}

pp::StateId RecursiveBipartitionProtocol::flip(pp::StateId s) const {
  const Decoded d = decode(s);
  PPK_EXPECTS(!d.is_leaf);
  return free_state(d.layer, d.prefix, d.parity ^ 1u);
}

pp::Transition RecursiveBipartitionProtocol::delta(pp::StateId p,
                                                   pp::StateId q) const {
  const Decoded dp = decode(p);
  const Decoded dq = decode(q);

  // Commit: a mixed free pair at the same tree node splits; parity 0 takes
  // bit 0, parity 1 takes bit 1 (the analogue of (ini, ini') -> (g1, g2)).
  if (!dp.is_leaf && !dq.is_leaf && dp.layer == dq.layer &&
      dp.prefix == dq.prefix && dp.parity != dq.parity) {
    auto descend = [&](const Decoded& d) -> pp::StateId {
      const std::uint32_t child = d.prefix * 2 + d.parity;
      return d.layer == h_ ? leaf_state(child)
                           : free_state(d.layer + 1, child, 0);
    };
    return {descend(dp), descend(dq)};
  }

  // Otherwise every free participant flips parity; leaves never change.
  pp::StateId p_next = dp.is_leaf ? p : flip(p);
  pp::StateId q_next = dq.is_leaf ? q : flip(q);
  if (dp.is_leaf && dq.is_leaf) return {p, q};  // null interaction
  return {p_next, q_next};
}

pp::GroupId RecursiveBipartitionProtocol::group(pp::StateId s) const {
  const Decoded d = decode(s);
  if (d.is_leaf) return static_cast<pp::GroupId>(d.prefix);
  // A free agent at layer l belongs (provisionally, and permanently if it
  // strands) to the leftmost leaf of its subtree.
  return static_cast<pp::GroupId>(d.prefix << (h_ - d.layer + 1));
}

std::string RecursiveBipartitionProtocol::state_name(pp::StateId s) const {
  const Decoded d = decode(s);
  auto bits = [&](std::uint32_t value, unsigned width) {
    std::string out;
    for (unsigned b = width; b > 0; --b) {
      out += ((value >> (b - 1)) & 1u) ? '1' : '0';
    }
    return out.empty() ? std::string("e") : out;  // "e" = empty prefix
  };
  if (d.is_leaf) return "leaf[" + bits(d.prefix, h_) + "]";
  return "free[" + bits(d.prefix, d.layer - 1) +
         (d.parity == 0 ? "]" : "']");
}

}  // namespace ppk::core
