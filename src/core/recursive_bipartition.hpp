// Baseline from the paper's introduction: "by repeating the uniform
// bipartition protocol h times, we can construct a uniform k-partition
// protocol for k = 2^h".
//
// Realization: each agent walks down a binary tree of depth h.  At tree
// node P (a committed prefix of layer-1..l-1 bits) it runs the 4-state
// bipartition protocol against partners at the same node: parity states
// play initial/initial', and a mixed pair commits -- the `initial` agent
// takes bit 0, the `initial'` agent bit 1 -- descending one layer (or
// becoming a leaf at layer h).  In every other interaction a non-committed
// agent flips parity, which keeps mixed pairs reachable under global
// fairness even when a tree node holds only two agents (the flip partner
// can be anyone in the population; n >= 3 guarantees one exists).
//
// State count: sum_l 2^l + 2^h = 3k - 2, coincidentally equal to the
// paper's protocol.
//
// Known limitation (and the reason the paper needs a new protocol): an odd
// node of s agents commits floor(s/2) pairs and strands one agent, which
// stays at the node forever and is output-mapped to the leftmost leaf of
// its subtree.  Strandings compound across layers, so uniformity (sizes
// within 1) is guaranteed only when k | n; for general n the deviation can
// reach h + 1.  The baseline-comparison bench measures exactly this.

#pragma once

#include <cstdint>

#include "pp/protocol.hpp"

namespace ppk::core {

class RecursiveBipartitionProtocol final : public pp::Protocol {
 public:
  /// Partitions into k = 2^h groups; requires 1 <= h <= 8.
  explicit RecursiveBipartitionProtocol(unsigned h);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override;
  [[nodiscard]] pp::StateId initial_state() const override { return 0; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override;
  [[nodiscard]] std::string state_name(pp::StateId s) const override;

  [[nodiscard]] unsigned depth() const noexcept { return h_; }

  /// State id of a non-committed agent at layer `layer` (1-based) with
  /// committed prefix `prefix` and parity `parity`.
  [[nodiscard]] pp::StateId free_state(unsigned layer, std::uint32_t prefix,
                                       unsigned parity) const;

  /// State id of the leaf with label `label` in [0, 2^h).
  [[nodiscard]] pp::StateId leaf_state(std::uint32_t label) const;

 private:
  struct Decoded {
    bool is_leaf;
    unsigned layer;         // 1..h (free agents only)
    std::uint32_t prefix;   // committed bits (free) / full label (leaf)
    unsigned parity;        // 0 = "initial", 1 = "initial'" (free only)
  };

  [[nodiscard]] Decoded decode(pp::StateId s) const;
  [[nodiscard]] pp::StateId flip(pp::StateId s) const;

  unsigned h_;
  std::uint32_t leaf_offset_;  // = 2^(h+1) - 2
};

}  // namespace ppk::core
