// Uniform k-partition under WEAK fairness (every pair of agents interacts
// infinitely often, but no guarantee about which configurations recur).
//
// The source paper's 3k-2 protocol needs global fairness: its symmetric
// pairing trick (initial <-> initial' flips) admits a weakly fair execution
// that flips free pairs forever without ever committing a group, and its
// mutual-demolition rule (m_i, m_j) -> (d_(i-1), d_(j-1)) lets a weakly
// fair adversary rebuild and demolish blocks in a cycle.  The follow-up
// paper by the same group (Yasumi-Ooshita-Inoue, arXiv:1911.04678) studies
// exactly this gap; this file implements the repo's weak-fairness family in
// that paper's spirit, engineered so the repo's exhaustive weak-fairness
// verifier (verify/weak_fairness.hpp) can machine-check it on small (n, k).
//
// Construction ("cyclic builder with loser demolition"), 3k+1 states:
//   I = {initial}                  -- designated initial state, f = 1
//   R = {released}                 -- freed by demolition; cannot re-pair
//   G = {g1..gk}                   -- committed members, f(gi) = i
//   B = {b1..bk}                   -- cyclic builders, f(bp) = p
//   D = {d1..d(k-1)}               -- demolishers, f(dj) = 1
//
// Rules (asymmetric; the written orientation below is mirrored):
//   1. (initial, initial) -> (g1, b2)      bootstrap: initiator commits to
//                                          group 1, responder starts building
//   2. (bp, free)         -> (bp(+)1, gp)  free in {initial, released}; the
//                                          builder assigns groups cyclically
//                                          (p(+)1 = p mod k + 1)
//   3. (bp, bq)           -> (bp, dq-1)    builder merge: the initiator
//                                          survives; the loser must undo its
//                                          current lap (q = 1 -> released)
//   4. (dj, gj)           -> (dj-1, released), and (d1, g1) -> (released,
//                             released): the demolisher frees exactly one
//                             member of each group j, j-1, ..., 1
//
// Why this is weak-fairness correct (machine-checked; proof sketch):
//   - #initial never increases (releases produce `released`, which cannot
//     pair), so bootstraps are finite; builders die only by losing a merge,
//     so once one exists, one exists forever, and weak fairness forces
//     coexisting builders to meet: eventually exactly one builder.
//   - Every demolisher's pending releases are funded by its loser's
//     current-lap assignments, so (dj, gj) can always fire and every
//     demolisher terminates; all effective rules strictly consume a finite
//     resource, so every execution -- under ANY scheduling -- reaches
//     silence after finitely many effective interactions.
//   - A silent configuration is one cyclic builder bp plus committed
//     members whose counts are "full laps + the prefix 1..p-1"; with
//     f(bp) = p that is exactly a uniform k-partition.
//
// The trade-off against the global-fairness protocol (documented in
// docs/protocols.md): 3k+1 states instead of 3k-2, and the protocol is
// asymmetric (rule 1 breaks the tie by role), which is how it escapes the
// flip livelock -- under weak fairness symmetric pairing cannot work.

#pragma once

#include <optional>

#include "pp/protocol.hpp"

namespace ppk::core {

/// The weak-fairness uniform k-partition family (3k+1 states; header
/// comment has the construction and correctness argument).
class WeakKPartitionProtocol final : public pp::Protocol {
 public:
  /// Requires k >= 2.
  explicit WeakKPartitionProtocol(pp::GroupId k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override;
  [[nodiscard]] pp::StateId initial_state() const override { return kInitial; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override { return k_; }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;

  /// The number of groups the instance partitions into.
  [[nodiscard]] pp::GroupId k() const noexcept { return k_; }

  // --- State encoding (public so tests and the verifier can name states) ---
  static constexpr pp::StateId kInitial = 0;   // "initial"
  static constexpr pp::StateId kReleased = 1;  // "released"

  /// g_x for x in 1..k.
  [[nodiscard]] pp::StateId g(pp::GroupId x) const;
  /// b_p for p in 1..k (the cyclic builder about to assign group p).
  [[nodiscard]] pp::StateId b(pp::GroupId p) const;
  /// d_q for q in 1..k-1 (a demolisher owing releases for groups q..1).
  [[nodiscard]] pp::StateId d(pp::GroupId q) const;

  /// True for the two unassigned states (initial, released).
  [[nodiscard]] bool is_free(pp::StateId s) const noexcept { return s <= 1; }
  /// True iff s is a committed member g_x.
  [[nodiscard]] bool is_g(pp::StateId s) const noexcept;
  /// True iff s is a cyclic builder b_p.
  [[nodiscard]] bool is_b(pp::StateId s) const noexcept;
  /// True iff s is a demolisher d_q.
  [[nodiscard]] bool is_d(pp::StateId s) const noexcept;
  /// Inverse of g()/b()/d(): the index x/p/q of a committed state.
  [[nodiscard]] pp::GroupId index_of(pp::StateId s) const;

 private:
  /// The rule set in its written orientation; nullopt = no rule.
  [[nodiscard]] std::optional<pp::Transition> rule(pp::StateId p,
                                                   pp::StateId q) const;

  pp::GroupId k_;
};

}  // namespace ppk::core
