#include "core/graph_bipartition.hpp"

#include <limits>

#include "util/assert.hpp"

namespace ppk::core {

std::optional<pp::Transition> GraphBipartitionProtocol::rule(
    pp::StateId p, pp::StateId q) const {
  // Rule 1: pair.
  if (p == kInitial && q == kInitial) {
    return pp::Transition{kR, kB};
  }
  // Rule 2: deposit -- the initiator settles red, parks a signal on the
  // settled neighbour (colour preserved).
  if (p == kInitial && q == kR) return pp::Transition{kR, kRSig};
  if (p == kInitial && q == kB) return pp::Transition{kR, kBSig};
  // Rule 3: clear -- a signal pays for a blue settlement.
  if (p == kInitial && q == kRSig) return pp::Transition{kB, kR};
  if (p == kInitial && q == kBSig) return pp::Transition{kB, kB};
  // Rule 5: cancel -- needs a red host to flip; (b^, b^) stays null.
  if (p == kRSig && has_signal(q)) {
    return pp::Transition{kB, q == kRSig ? kR : kB};
  }
  if (p == kBSig && q == kRSig) return pp::Transition{kB, kB};
  // Rule 4: hop -- the signal moves initiator -> responder; both hosts
  // keep their colour (and hence their output).
  if (p == kRSig && q == kR) return pp::Transition{kR, kRSig};
  if (p == kRSig && q == kB) return pp::Transition{kR, kBSig};
  if (p == kBSig && q == kR) return pp::Transition{kB, kRSig};
  if (p == kBSig && q == kB) return pp::Transition{kB, kBSig};
  return std::nullopt;
}

pp::Transition GraphBipartitionProtocol::delta(pp::StateId p,
                                               pp::StateId q) const {
  PPK_EXPECTS(p < num_states() && q < num_states());
  if (auto t = rule(p, q)) return *t;
  if (auto t = rule(q, p)) return pp::Transition{t->responder, t->initiator};
  return pp::Transition{p, q};  // null interaction
}

pp::GroupId GraphBipartitionProtocol::group(pp::StateId s) const {
  PPK_EXPECTS(s < num_states());
  return (s == kB || s == kBSig) ? 1 : 0;
}

std::string GraphBipartitionProtocol::state_name(pp::StateId s) const {
  PPK_EXPECTS(s < num_states());
  switch (s) {
    case kInitial:
      return "initial";
    case kR:
      return "r";
    case kB:
      return "b";
    case kRSig:
      return "r^";
    default:
      return "b^";
  }
}

std::unique_ptr<pp::StabilityOracle> graph_bipartition_stable_oracle(
    const GraphBipartitionProtocol& protocol, std::uint64_t n) {
  PPK_EXPECTS(n >= 2);
  PPK_EXPECTS(n <= std::numeric_limits<std::uint32_t>::max());
  // Classes: 0 = initial (must empty), 1 = signal carriers (must hold
  // exactly the red surplus, n mod 2), 2 = settled r/b (the rest).
  std::vector<std::uint16_t> state_class(protocol.num_states());
  state_class[GraphBipartitionProtocol::kInitial] = 0;
  state_class[GraphBipartitionProtocol::kRSig] = 1;
  state_class[GraphBipartitionProtocol::kBSig] = 1;
  state_class[GraphBipartitionProtocol::kR] = 2;
  state_class[GraphBipartitionProtocol::kB] = 2;
  const auto parity = static_cast<std::uint32_t>(n % 2);
  std::vector<std::uint32_t> target = {
      0, parity, static_cast<std::uint32_t>(n) - parity};
  return std::make_unique<pp::CountPatternOracle>(std::move(state_class),
                                                  std::move(target));
}

}  // namespace ppk::core
