#include "core/kpartition.hpp"

#include "pp/symmetry.hpp"
#include "util/assert.hpp"

namespace ppk::core {

namespace {

/// initial <-> initial'.
pp::StateId flip(pp::StateId free_state) {
  return free_state == 0 ? pp::StateId{1} : pp::StateId{0};
}

pp::Transition swapped(const pp::Transition& t) {
  return pp::Transition{t.responder, t.initiator};
}

}  // namespace

// ---------------------------------------------------------------------------
// KPartitionProtocol
// ---------------------------------------------------------------------------

KPartitionProtocol::KPartitionProtocol(pp::GroupId k) : k_(k) {
  PPK_EXPECTS(k >= 2);
}

std::string KPartitionProtocol::name() const {
  return "kpartition(k=" + std::to_string(k_) + ")";
}

pp::StateId KPartitionProtocol::num_states() const {
  // |I| + |G| + |M| + |D| = 2 + k + (k-2) + (k-2) = 3k - 2; for k = 2 the
  // M and D ranges are empty and the formula still gives 4.
  return static_cast<pp::StateId>(3 * k_ - 2);
}

pp::StateId KPartitionProtocol::g(pp::GroupId x) const {
  PPK_EXPECTS(x >= 1 && x <= k_);
  return static_cast<pp::StateId>(2 + (x - 1));
}

pp::StateId KPartitionProtocol::m(pp::GroupId p) const {
  PPK_EXPECTS(k_ >= 3 && p >= 2 && p <= k_ - 1);
  return static_cast<pp::StateId>(2 + k_ + (p - 2));
}

pp::StateId KPartitionProtocol::d(pp::GroupId q) const {
  PPK_EXPECTS(k_ >= 3 && q >= 1 && q <= k_ - 2);
  return static_cast<pp::StateId>(2 + k_ + (k_ - 2) + (q - 1));
}

bool KPartitionProtocol::is_g(pp::StateId s) const noexcept {
  return s >= 2 && s < 2 + k_;
}

bool KPartitionProtocol::is_m(pp::StateId s) const noexcept {
  return s >= 2 + k_ && s < 2 + k_ + (k_ - 2);
}

bool KPartitionProtocol::is_d(pp::StateId s) const noexcept {
  return s >= 2 + k_ + (k_ - 2) && s < num_states();
}

pp::GroupId KPartitionProtocol::index_of(pp::StateId s) const {
  PPK_EXPECTS(!is_free(s));
  if (is_g(s)) return static_cast<pp::GroupId>(s - 2 + 1);
  if (is_m(s)) return static_cast<pp::GroupId>(s - (2 + k_) + 2);
  return static_cast<pp::GroupId>(s - (2 + k_ + (k_ - 2)) + 1);
}

pp::GroupId KPartitionProtocol::group(pp::StateId s) const {
  // f(ini) = 1, f(gi) = i, f(mi) = i, f(di) = 1 -- zero-based externally.
  if (is_free(s) || is_d(s)) return 0;
  return static_cast<pp::GroupId>(index_of(s) - 1);
}

std::string KPartitionProtocol::state_name(pp::StateId s) const {
  if (s == kInitial) return "initial";
  if (s == kInitialPrime) return "initial'";
  if (is_g(s)) return "g" + std::to_string(index_of(s));
  if (is_m(s)) return "m" + std::to_string(index_of(s));
  return "d" + std::to_string(index_of(s));
}

std::optional<pp::Transition> KPartitionProtocol::rule(pp::StateId p,
                                                       pp::StateId q) const {
  // Rules 1, 2, 5: interactions among free agents.
  if (is_free(p) && is_free(q)) {
    if (p == q) {
      // Rule 1: (initial, initial)   -> (initial', initial')
      // Rule 2: (initial', initial') -> (initial, initial)
      return pp::Transition{flip(p), flip(q)};
    }
    // Rule 5: (initial, initial') -> (g1, m2); for k = 2 the builder chain
    // is empty and the pair completes a group immediately: -> (g1, g2).
    if (p == kInitial) {
      return pp::Transition{g(1), k_ >= 3 ? m(2) : g(2)};
    }
    return std::nullopt;  // (initial', initial): handled by the mirror
  }

  // Rule 3: (di, ini) -> (di, flip(ini)).
  if (is_d(p) && is_free(q)) return pp::Transition{p, flip(q)};

  // Rule 4: (gi, ini) -> (gi, flip(ini)).
  if (is_g(p) && is_free(q)) return pp::Transition{p, flip(q)};

  if (is_free(p) && is_m(q)) {
    const pp::GroupId i = index_of(q);
    // Rule 6: (ini, mi) -> (gi, m(i+1)) for 2 <= i <= k-2.
    if (i <= k_ - 2) return pp::Transition{g(i), m(static_cast<pp::GroupId>(i + 1))};
    // Rule 7: (ini, m(k-1)) -> (g(k-1), gk).
    return pp::Transition{g(static_cast<pp::GroupId>(k_ - 1)), g(k_)};
  }

  // Rule 8: (mi, mj) -> (d(i-1), d(j-1)) for 2 <= i, j <= k-1.
  if (is_m(p) && is_m(q)) {
    const pp::GroupId i = index_of(p);
    const pp::GroupId j = index_of(q);
    return pp::Transition{d(static_cast<pp::GroupId>(i - 1)),
                          d(static_cast<pp::GroupId>(j - 1))};
  }

  if (is_d(p) && is_g(q)) {
    const pp::GroupId i = index_of(p);
    if (index_of(q) != i) return std::nullopt;  // only matching indices react
    // Rule 9: (di, gi) -> (d(i-1), initial) for 2 <= i <= k-2.
    if (i >= 2) {
      return pp::Transition{d(static_cast<pp::GroupId>(i - 1)), kInitial};
    }
    // Rule 10: (d1, g1) -> (initial, initial).
    return pp::Transition{kInitial, kInitial};
  }

  return std::nullopt;
}

pp::Transition KPartitionProtocol::delta(pp::StateId p, pp::StateId q) const {
  PPK_EXPECTS(p < num_states() && q < num_states());
  if (auto t = rule(p, q)) return *t;
  if (auto t = rule(q, p)) return swapped(*t);
  return pp::Transition{p, q};  // null interaction
}

pp::SymmetrySpec KPartitionProtocol::symmetry() const {
  pp::SymmetrySpec spec{num_states(), {}};
  if (k_ == 2) {
    spec.generators.push_back(
        pp::transposition(num_states(), kInitial, kInitialPrime));
    spec.generators.push_back(pp::transposition(num_states(), g(1), g(2)));
  }
  // k >= 3 admits no non-trivial state symmetry: rules 9 and 10 release
  // demolished agents as the specific free state `initial`, so the
  // initial <-> initial' flip is not a table automorphism (check_symmetry
  // rejects it at the (g1, d1) pair), and the builder/demolisher chains
  // pin every group index.  The trivial spec still routes the exact
  // analysis through the sparse solver.
  return spec;
}

// ---------------------------------------------------------------------------
// BasicStrategyProtocol (transitions 1-7 only; intentionally incorrect)
// ---------------------------------------------------------------------------

BasicStrategyProtocol::BasicStrategyProtocol(pp::GroupId k) : k_(k) {
  PPK_EXPECTS(k >= 3);
}

std::string BasicStrategyProtocol::name() const {
  return "basic-strategy(k=" + std::to_string(k_) + ")";
}

pp::StateId BasicStrategyProtocol::num_states() const {
  return static_cast<pp::StateId>(2 * k_);  // I u G u M, no D
}

pp::StateId BasicStrategyProtocol::g(pp::GroupId x) const {
  PPK_EXPECTS(x >= 1 && x <= k_);
  return static_cast<pp::StateId>(2 + (x - 1));
}

pp::StateId BasicStrategyProtocol::m(pp::GroupId p) const {
  PPK_EXPECTS(p >= 2 && p <= k_ - 1);
  return static_cast<pp::StateId>(2 + k_ + (p - 2));
}

pp::GroupId BasicStrategyProtocol::group(pp::StateId s) const {
  if (s <= 1) return 0;                                   // f(ini) = 1
  if (s < 2 + k_) return static_cast<pp::GroupId>(s - 2);  // f(gi) = i
  return static_cast<pp::GroupId>(s - (2 + k_) + 1);       // f(mi) = i
}

std::string BasicStrategyProtocol::state_name(pp::StateId s) const {
  if (s == 0) return "initial";
  if (s == 1) return "initial'";
  if (s < 2 + k_) return "g" + std::to_string(s - 1);
  return "m" + std::to_string(s - (2 + k_) + 2);
}

std::optional<pp::Transition> BasicStrategyProtocol::rule(
    pp::StateId p, pp::StateId q) const {
  const bool p_free = p <= 1;
  const bool q_free = q <= 1;
  const bool p_g = p >= 2 && p < 2 + k_;
  const bool q_m = q >= 2 + k_;

  if (p_free && q_free) {
    if (p == q) return pp::Transition{flip(p), flip(q)};   // rules 1, 2
    if (p == 0) return pp::Transition{g(1), m(2)};          // rule 5
    return std::nullopt;
  }
  if (p_g && q_free) return pp::Transition{p, flip(q)};     // rule 4
  if (p_free && q_m) {
    const auto i = static_cast<pp::GroupId>(q - (2 + k_) + 2);
    if (i <= k_ - 2) {                                      // rule 6
      return pp::Transition{g(i), m(static_cast<pp::GroupId>(i + 1))};
    }
    return pp::Transition{g(static_cast<pp::GroupId>(k_ - 1)), g(k_)};  // 7
  }
  return std::nullopt;
}

pp::Transition BasicStrategyProtocol::delta(pp::StateId p,
                                            pp::StateId q) const {
  PPK_EXPECTS(p < num_states() && q < num_states());
  if (auto t = rule(p, q)) return *t;
  if (auto t = rule(q, p)) return swapped(*t);
  return pp::Transition{p, q};
}

pp::SymmetrySpec BasicStrategyProtocol::symmetry() const {
  pp::SymmetrySpec spec{num_states(), {}};
  spec.generators.push_back(pp::transposition(num_states(), 0, 1));
  return spec;
}

}  // namespace ppk::core
