// Self-healing uniform k-partition under churn.
//
// The paper's protocol has designated initial states and is NOT
// self-stabilizing: once an agent crashes, the Lemma 1 bookkeeping is
// broken forever and the survivors can be stuck in a non-uniform partition
// (examples/fault_recovery demonstrates this honestly).  Following the
// re-initialization idea of the weak-fairness uniform-partition line of
// work (Yasumi-Ooshita-Inoue), this layer makes the *system* recover even
// though the protocol alone cannot:
//
//  - SelfHealingKPartitionProtocol wraps Algorithm 1 with an epoch stamp
//    in Z_3, tripling the state space to 3(3k-2).  Same-epoch pairs run
//    the base rules unchanged; cross-epoch pairs propagate a reset
//    epidemically: the cyclically-older agent adopts the newer epoch and
//    restarts from the designated initial state.  A restarted agent
//    re-enters the protocol exactly like a late-joining initial agent,
//    which Algorithm 1 absorbs (group sets already locked in are never
//    undone, and fresh initial agents fill the remaining slots).
//
//  - RecoveryManager is the system-side fault handler -- think of the base
//    station of the paper's motivating sensor deployment, or the harness
//    of a fault-injection campaign.  It watches a ChurnSimulator's fault
//    trace, decides when the current epoch's bookkeeping is damaged (a
//    committed slot lost to a crash, a state corrupted), and then seeds
//    ONE surviving agent with the next epoch; everything else spreads
//    through ordinary interactions.  Reset waves are serialized: a new
//    wave starts only after the previous one has converted every agent, so
//    at most two consecutive epochs are ever live and the Z_3 cyclic
//    successor order is well-defined.  Corrupted agents are surgically
//    normalized back into the current epoch when the fault is observed,
//    which keeps "future" epochs from ever appearing spontaneously.
//
// What is protocol and what is harness, honestly: crash/corruption
// *detection* is done by the manager with fault-oracle access (anonymous
// finite-state agents cannot detect departures; the paper's model has no
// self-stabilizing exact k-partition).  Everything after detection -- the
// reset wave, re-convergence to the uniform partition of the surviving
// population -- is pure population-protocol dynamics under the same
// scheduler and fairness assumptions as the base protocol.

#pragma once

#include <cstdint>
#include <memory>

#include "core/kpartition.hpp"
#include "pp/faults.hpp"
#include "pp/population.hpp"
#include "pp/stability.hpp"

namespace ppk::obs {
class ObsSink;
}  // namespace ppk::obs

namespace ppk::core {

class SelfHealingKPartitionProtocol final : public pp::Protocol {
 public:
  /// Epochs live in Z_3: with reset waves serialized (at most two
  /// consecutive epochs concurrently live), the cyclic successor relation
  /// e -> e+1 mod 3 totally orders every pair that can actually meet.
  static constexpr std::uint32_t kEpochs = 3;

  explicit SelfHealingKPartitionProtocol(pp::GroupId k) : base_(k) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override {
    return static_cast<pp::StateId>(kEpochs * base_.num_states());
  }
  [[nodiscard]] pp::StateId initial_state() const override {
    return encode(0, base_.initial_state());
  }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return base_.group(base_of(s));
  }
  [[nodiscard]] pp::GroupId num_groups() const override {
    return base_.num_groups();
  }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;

  // --- Epoch-stamped state encoding --------------------------------------

  [[nodiscard]] pp::StateId encode(std::uint32_t epoch,
                                   pp::StateId base) const {
    PPK_EXPECTS(epoch < kEpochs && base < base_.num_states());
    return static_cast<pp::StateId>(epoch * base_.num_states() + base);
  }
  [[nodiscard]] std::uint32_t epoch_of(pp::StateId s) const {
    return s / base_.num_states();
  }
  [[nodiscard]] pp::StateId base_of(pp::StateId s) const {
    return static_cast<pp::StateId>(s % base_.num_states());
  }
  [[nodiscard]] static std::uint32_t next_epoch(std::uint32_t e) noexcept {
    return (e + 1) % kEpochs;
  }

  [[nodiscard]] const KPartitionProtocol& base() const noexcept {
    return base_;
  }

 private:
  KPartitionProtocol base_;
};

/// Churn-aware stability oracle for the self-healing wrapper: stable iff
/// every agent carries the target epoch and the base-state counts match
/// the Lemma 6 stable pattern of the *current* population size.  O(1) per
/// protocol transition; rebuilt (configure) by the RecoveryManager on
/// epoch changes and by on_external_change on churn.  Never stable while
/// fewer than 3 agents survive (the paper's standing assumption).
class HealingOracle final : public pp::StabilityOracle {
 public:
  explicit HealingOracle(const SelfHealingKPartitionProtocol& protocol);

  /// Rebuilds classes and targets for (epoch, |counts|) and recounts.
  void configure(std::uint32_t epoch, const pp::Counts& counts);

  void reset(const pp::Counts& counts) override;
  void on_transition(pp::StateId p, pp::StateId q, pp::StateId p_next,
                     pp::StateId q_next) override;
  void on_external_change(const pp::Counts& counts) override;
  [[nodiscard]] bool stable() const override {
    return n_ >= 3 && mismatch_ == 0;
  }

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  void bump(std::uint16_t cls, int delta);
  void recount(const pp::Counts& counts);

  const SelfHealingKPartitionProtocol* protocol_;
  std::uint32_t epoch_ = 0;
  std::uint32_t n_ = 0;
  /// Class layout: 0 = current epoch's {initial, initial'}; s-1 for every
  /// other current-epoch base state s; last class = all foreign epochs
  /// (target 0).
  std::vector<std::uint16_t> state_class_;
  std::vector<std::uint32_t> target_;
  std::vector<std::uint32_t> current_;
  std::uint32_t mismatch_ = 0;
};

/// System-side recovery controller.  Wires itself into a ChurnSimulator's
/// fault and transition observer slots (it owns both) and seeds epidemic
/// reset waves whenever churn damages the current epoch's bookkeeping.
/// All decisions are deterministic functions of the fault trace, so runs
/// remain seed-reproducible.
class RecoveryManager {
 public:
  RecoveryManager(const SelfHealingKPartitionProtocol& protocol,
                  pp::ChurnSimulator& sim);

  /// The oracle to pass to ChurnSimulator::run(); tracks epoch changes and
  /// churn automatically.
  [[nodiscard]] pp::StabilityOracle& oracle() noexcept { return oracle_; }

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t waves_started() const noexcept { return waves_; }
  /// Interaction index of the last fault that required repair (0 if none).
  [[nodiscard]] std::uint64_t last_disruption_at() const noexcept {
    return last_disruption_at_;
  }
  /// True while a damaged configuration has not yet re-stabilized.
  [[nodiscard]] bool wave_pending() const noexcept { return wave_pending_; }

  /// Attaches an observability sink (obs/sink.hpp); nullptr detaches.  The
  /// manager counts recovery.waves and recovery.reseeds and tracks the
  /// current epoch in the recovery.epoch gauge; the sink must outlive the
  /// manager.
  void set_obs_sink(obs::ObsSink* sink) noexcept { obs_ = sink; }

 private:
  void handle_fault(const pp::FaultRecord& record);
  void handle_transition(const pp::SimEvent& event);
  void request_wave(std::uint64_t at);
  void start_wave();
  /// Writes the current epoch's initial state into one surviving agent.
  void seed_current_epoch();
  /// Recounts stragglers and reconfigures the oracle from the live counts.
  void refresh();

  const SelfHealingKPartitionProtocol* protocol_;
  pp::ChurnSimulator* sim_;
  HealingOracle oracle_;
  std::uint32_t epoch_ = 0;
  /// Agents not yet converted to the current epoch (wave in flight > 0).
  std::int64_t old_remaining_ = 0;
  bool wave_pending_ = false;
  std::uint32_t waves_ = 0;
  std::uint64_t last_disruption_at_ = 0;
  obs::ObsSink* obs_ = nullptr;
};

}  // namespace ppk::core
