// Crash-safe Monte-Carlo campaigns (docs/campaigns.md).
//
// A campaign is a repeated-trial run (pp/monte_carlo.hpp) hardened for
// unattended execution:
//
//  - Checkpointing.  The runner periodically persists a versioned
//    `ppk-campaign-v1` checkpoint -- completed trial results, engine
//    snapshots of in-flight trials (pp/snapshot.hpp), and the merged
//    observability metrics -- via an atomic write-temp-then-rename
//    (io/atomic_file.hpp).  A campaign killed at any instant (SIGKILL
//    included) resumes from its checkpoint with no completed trial lost,
//    and the finished statistics are bit-identical to an uninterrupted
//    run at any thread count.
//
//  - Supervision.  Per-trial wall-clock deadlines, stalled/timeout
//    classification, bounded retry with exponential interaction-budget
//    backoff, and graceful degradation past a global deadline with
//    completed/retried/failed/censored accounting.
//
// Determinism model: every trial is driven in fixed interaction chunks
// (run(chunk), resume(chunk), ...), so an interrupted trial restored from
// its snapshot sees exactly the grant sequence the uninterrupted trial
// would have seen -- the engines' snapshot contract then guarantees a
// bit-identical trajectory for every engine, including the jump and batch
// engines whose sampling depends on grant boundaries.  Wall-clock
// supervision (deadlines, stop flag) only decides *whether* a trial keeps
// running; it never alters the trajectory of a trial that completes.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/snapshot.hpp"

namespace ppk::core {

/// Schema tag of the checkpoint file format.
inline constexpr std::string_view kCampaignSchema = "ppk-campaign-v1";

/// Default per-grant chunk size: large enough that chunking cost is noise,
/// small enough that checkpoints and deadline checks stay responsive
/// (matches the Monte-Carlo runner's wall-clock check cadence).
inline constexpr std::uint64_t kDefaultChunkInteractions = 1ULL << 22;

struct CampaignTrial;

/// Campaign configuration: a base Monte-Carlo configuration plus the
/// checkpointing and supervision knobs.
struct CampaignOptions {
  /// Base trial configuration (trials, seed, budget, engine, threads,
  /// watch state, topology).  Two fields are owned by the campaign and
  /// must stay at their defaults: `metrics` (the campaign manages
  /// per-trial registries; see CampaignResult::metrics) and
  /// `wall_clock_limit_seconds` (superseded by trial_deadline_seconds).
  pp::MonteCarloOptions mc;

  /// Checkpoint file path; empty disables checkpointing.  run() resumes
  /// from this file when it exists and its fingerprint matches.
  std::string checkpoint_path;

  /// Interactions granted per run()/resume() call.  Part of the trial's
  /// deterministic identity: a checkpoint records results for one chunk
  /// size and resuming requires the same value.
  std::uint64_t chunk_interactions = kDefaultChunkInteractions;

  /// Checkpoint write cadence, counted in progress events (completed
  /// chunks and completed trials) across all workers.
  std::uint32_t checkpoint_every_chunks = 16;

  /// Retry budget for trials that end stalled or budget-exhausted without
  /// stabilizing.  Each retry re-runs the trial from the initial
  /// configuration with a fresh derived seed and a backed-off budget.
  std::uint32_t max_retries = 0;

  /// Interaction-budget multiplier per retry (attempt r runs with
  /// mc.max_interactions * retry_backoff^r, saturating at UINT64_MAX).
  double retry_backoff = 2.0;

  /// Per-attempt wall-clock deadline, checked at chunk boundaries.  An
  /// attempt past it stops with a timed_out verdict (no retry: the wall
  /// clock, unlike the interaction budget, does not back off).
  std::optional<double> trial_deadline_seconds;

  /// Campaign-wide wall-clock deadline, checked at chunk boundaries.
  /// Past it, in-flight trials are captured and censored, pending trials
  /// never start, and run() returns with complete = false; the final
  /// checkpoint keeps everything resumable.
  std::optional<double> campaign_deadline_seconds;

  /// Cooperative cancellation (e.g. a SIGINT handler's flag): when it
  /// becomes true the campaign winds down exactly as if the campaign
  /// deadline had passed.
  const std::atomic<bool>* stop = nullptr;

  /// Collect per-trial observability metrics into CampaignResult::metrics
  /// (and into checkpoints).  Off, trials run without a sink attached.
  bool collect_metrics = true;

  /// Stable name for the topology behind `mc.graph`, folded into the
  /// configuration fingerprint (e.g. "ring", "erdos-renyi:p=0.1").  The
  /// factory itself is a std::function and cannot be fingerprinted; an
  /// empty tag falls back to a presence bit, which distinguishes
  /// graph-from-no-graph but NOT ring-from-star -- callers that switch
  /// topologies between runs must tag them.
  std::string topology_tag;

  /// Streaming hook: invoked once per trial verdict (completed, failed,
  /// or censored) as trials finish, under the campaign lock -- callbacks
  /// are serialized and must not re-enter the campaign.  Trials restored
  /// as already-completed from a checkpoint are NOT re-announced.
  std::function<void(std::uint32_t trial, const CampaignTrial&)> on_trial;

  /// Operational (non-deterministic) campaign metrics: checkpoint write
  /// durations (campaign.checkpoint.write_us), checkpoint count
  /// (campaign.checkpoints), retries (campaign.retries) and final
  /// censored/failed gauges (campaign.trials.censored/.failed).  Kept out
  /// of the deterministic merged registry on purpose.  Must outlive run().
  obs::MetricsRegistry* runtime_metrics = nullptr;
};

/// Outcome of one supervised trial.
struct CampaignTrial {
  /// The trial verdict.  interactions/effective accumulate across retries
  /// (total work spent on the trial); stabilized/timed_out/stalled and
  /// watch_marks describe the final attempt.
  pp::TrialResult result;

  /// Retries consumed (0 = first attempt sufficed).
  std::uint32_t retries = 0;

  /// True iff every attempt ended stalled or budget-exhausted: the trial
  /// has a final verdict, and it is "did not stabilize".
  bool failed = false;

  /// True iff supervision cut the trial off (global deadline or stop
  /// flag) before a verdict; a checkpointed campaign resumes it later.
  bool censored = false;
};

/// Everything run() knows when it returns.
struct CampaignResult {
  /// Per-trial outcomes, indexed by trial number.
  std::vector<CampaignTrial> trials;

  /// Merged observability metrics over *completed* trials (censored
  /// trials' partial registries live only in the checkpoint).  The merge
  /// is commutative, so this is bit-identical across thread counts and
  /// across kill/resume boundaries once the campaign completes.
  obs::MetricsRegistry metrics;

  /// True iff every trial reached a verdict (stabilized, timed out, or
  /// failed after retries).
  bool complete = false;

  /// True iff this run started from an existing checkpoint.
  bool resumed = false;

  /// Non-empty iff run() refused to start: the checkpoint file exists but
  /// is malformed or was written by a different configuration.  Nothing
  /// ran and `trials` is empty in that case.
  std::string error;

  /// Trials with a verdict.
  [[nodiscard]] std::uint32_t completed_count() const;
  /// Trials that needed at least one retry.
  [[nodiscard]] std::uint32_t retried_count() const;
  /// Trials whose verdict is failed.
  [[nodiscard]] std::uint32_t failed_count() const;
  /// Trials cut off without a verdict.
  [[nodiscard]] std::uint32_t censored_count() const;
};

/// Checkpointed state of one in-flight trial: enough to restore the
/// engine mid-attempt and continue bit-identically.
struct InFlightTrial {
  /// Trial number.
  std::uint32_t trial = 0;
  /// Retry index of the attempt the snapshot belongs to.
  std::uint32_t retry = 0;
  /// Interactions consumed within this attempt (a multiple of the chunk
  /// size; snapshots are taken at chunk boundaries only).
  std::uint64_t consumed = 0;
  /// Trial-accumulated interaction total at the snapshot (across
  /// attempts).
  std::uint64_t interactions = 0;
  /// Trial-accumulated effective-interaction total at the snapshot.
  std::uint64_t effective = 0;
  /// Engine state at the snapshot (pp/snapshot.hpp).
  pp::Snapshot snapshot;
  /// Oracle progress at the snapshot (StabilityOracle::save_state()).
  std::vector<std::uint64_t> oracle_state;
  /// Configuration at the snapshot; restore passes it to oracle.reset()
  /// before restore_state().
  pp::Counts counts;
  /// Watch marks recorded so far in this attempt.
  std::vector<std::uint64_t> watch_marks;
  /// The attempt's partial observability registry.
  obs::MetricsRegistry metrics;
};

/// One completed trial as stored in a checkpoint.
struct CompletedTrial {
  /// Trial number.
  std::uint32_t trial = 0;
  /// Its verdict.
  CampaignTrial data;
};

/// Parsed form of a `ppk-campaign-v1` checkpoint file.
struct CampaignCheckpoint {
  /// Configuration fingerprint (campaign_fingerprint()); resume refuses a
  /// checkpoint whose fingerprint differs from the running configuration.
  std::string fingerprint;
  /// Trials with a verdict.
  std::vector<CompletedTrial> completed;
  /// Trials captured mid-attempt.
  std::vector<InFlightTrial> in_flight;
  /// Merged registry over the completed trials.
  obs::MetricsRegistry metrics;
};

/// Deterministic one-line description of everything that shapes trial
/// trajectories (trials, seed, budget, engine, fairness policy + epsilon,
/// chunk size, retry policy, watch state, topology tag, initial
/// configuration).  Stored in checkpoints and compared verbatim on
/// resume.  The topology factory itself cannot be fingerprinted: set
/// `CampaignOptions::topology_tag` so distinct topologies refuse each
/// other's checkpoints; with an empty tag only graph-vs-no-graph is
/// distinguished and resuming with a different factory is a caller error.
[[nodiscard]] std::string campaign_fingerprint(const pp::Counts& initial,
                                               const CampaignOptions& options);

/// Serializes a checkpoint to its JSON file form.
[[nodiscard]] std::string serialize_campaign_checkpoint(
    const CampaignCheckpoint& checkpoint);

/// Parses serialize_campaign_checkpoint() output.  nullopt (and a
/// one-line reason in `error` when non-null) on malformed input --
/// checkpoint files come from disk, so parsing is soft-fail.
[[nodiscard]] std::optional<CampaignCheckpoint> parse_campaign_checkpoint(
    std::string_view text, std::string* error = nullptr);

/// Runs a supervised, checkpointed campaign.  Resumes from
/// `options.checkpoint_path` when the file exists; writes a final
/// checkpoint (when checkpointing is enabled) before returning, so an
/// interrupted campaign can be re-run with the same arguments until
/// complete.
///
/// This counts-only overload cannot realize non-uniform fairness (the
/// adversarial engine needs the protocol's group map to probe for
/// non-progressing pairs) and fails fast -- PPK_EXPECTS -- when
/// `options.mc.fairness.needs_adversarial_engine()`; use a
/// protocol-taking overload for those specs.
[[nodiscard]] CampaignResult run_campaign(const pp::TransitionTable& table,
                                          const pp::Counts& initial,
                                          const pp::OracleFactory& make_oracle,
                                          const CampaignOptions& options);

/// Full-axis overload: carries the protocol so `options.mc.fairness`
/// specs that need the agent-level adversarial engine (weak round-robin,
/// epsilon-fair with epsilon < 1) are routed to it, mirroring the
/// Monte-Carlo runner.  Adversarial campaigns require engine kAuto or
/// kAgentArray and no watch state; `mc.graph` composes as the scheduling
/// topology.
[[nodiscard]] CampaignResult run_campaign(const pp::Protocol& protocol,
                                          const pp::TransitionTable& table,
                                          const pp::Counts& initial,
                                          const pp::OracleFactory& make_oracle,
                                          const CampaignOptions& options);

/// Convenience overload: n agents, all in the protocol's designated
/// initial state.
[[nodiscard]] CampaignResult run_campaign(const pp::Protocol& protocol,
                                          const pp::TransitionTable& table,
                                          std::uint32_t n,
                                          const pp::OracleFactory& make_oracle,
                                          const CampaignOptions& options);

}  // namespace ppk::core
