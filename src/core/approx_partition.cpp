#include "core/approx_partition.hpp"

#include "util/assert.hpp"

namespace ppk::core {

namespace {

unsigned ceil_log2(unsigned v) {
  unsigned bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

ApproxPartitionProtocol::ApproxPartitionProtocol(pp::GroupId k)
    : k_(k), split_levels_(ceil_log2(k)), levels_(split_levels_ + 1) {
  PPK_EXPECTS(k >= 2 && k <= 256);
}

std::string ApproxPartitionProtocol::name() const {
  return "approx-partition(k=" + std::to_string(k_) + ")";
}

pp::StateId ApproxPartitionProtocol::num_states() const {
  return static_cast<pp::StateId>(static_cast<unsigned>(k_) * levels_);
}

pp::StateId ApproxPartitionProtocol::state(pp::GroupId group,
                                           unsigned level) const {
  PPK_EXPECTS(group < k_);
  PPK_EXPECTS(level >= 1 && level <= levels_);
  return static_cast<pp::StateId>((level - 1) * k_ + group);
}

pp::Transition ApproxPartitionProtocol::delta(pp::StateId p,
                                              pp::StateId q) const {
  PPK_EXPECTS(p < num_states() && q < num_states());
  if (p != q) return {p, q};
  const unsigned level = p / k_ + 1;
  if (level > split_levels_) return {p, q};  // final level: no more splits
  const auto g = static_cast<pp::GroupId>(p % k_);
  const std::uint32_t sibling = g + (1u << (level - 1));
  const pp::GroupId g_new =
      sibling < k_ ? static_cast<pp::GroupId>(sibling) : g;
  return {state(g, level + 1), state(g_new, level + 1)};
}

pp::GroupId ApproxPartitionProtocol::group(pp::StateId s) const {
  return static_cast<pp::GroupId>(s % k_);
}

std::string ApproxPartitionProtocol::state_name(pp::StateId s) const {
  return "(g" + std::to_string(s % k_ + 1) + ",l" +
         std::to_string(s / k_ + 1) + ")";
}

}  // namespace ppk::core
