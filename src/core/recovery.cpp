#include "core/recovery.hpp"

#include <algorithm>
#include <string>

#include "core/invariants.hpp"
#include "obs/sink.hpp"

namespace ppk::core {

// --- SelfHealingKPartitionProtocol -----------------------------------------

std::string SelfHealingKPartitionProtocol::name() const {
  return "self-healing(" + base_.name() + ")";
}

pp::Transition SelfHealingKPartitionProtocol::delta(pp::StateId p,
                                                    pp::StateId q) const {
  const std::uint32_t ep = epoch_of(p);
  const std::uint32_t eq = epoch_of(q);
  if (ep == eq) {
    // Same epoch: Algorithm 1 verbatim, lifted.
    const pp::Transition t = base_.delta(base_of(p), base_of(q));
    return {encode(ep, t.initiator), encode(ep, t.responder)};
  }
  if (eq == next_epoch(ep)) {
    // q carries the newer epoch: p adopts it and restarts from the
    // designated initial state; q is unchanged.  The restart makes p a
    // late-joining initial agent of the new epoch, which the base protocol
    // absorbs.
    return {encode(eq, base_.initial_state()), q};
  }
  // Mirror image (ep == next_epoch(eq)); the rule set is swap-consistent.
  return {p, encode(ep, base_.initial_state())};
}

std::string SelfHealingKPartitionProtocol::state_name(pp::StateId s) const {
  return "e" + std::to_string(epoch_of(s)) + ":" +
         base_.state_name(base_of(s));
}

// --- HealingOracle ---------------------------------------------------------

HealingOracle::HealingOracle(const SelfHealingKPartitionProtocol& protocol)
    : protocol_(&protocol) {
  const pp::StateId base_states = protocol.base().num_states();
  state_class_.assign(protocol.num_states(), 0);
  // base_states classes: merged free class, one per other base state, plus
  // one trailing class for every foreign-epoch state.
  target_.assign(static_cast<std::size_t>(base_states) + 1, 0);
  current_.assign(target_.size(), 0);
}

void HealingOracle::configure(std::uint32_t epoch, const pp::Counts& counts) {
  PPK_EXPECTS(epoch < SelfHealingKPartitionProtocol::kEpochs);
  PPK_EXPECTS(counts.size() == protocol_->num_states());
  epoch_ = epoch;
  n_ = 0;
  for (auto c : counts) n_ += c;

  const KPartitionProtocol& base = protocol_->base();
  const pp::StateId base_states = base.num_states();
  const auto foreign_class = static_cast<std::uint16_t>(base_states);
  for (pp::StateId s = 0; s < protocol_->num_states(); ++s) {
    if (protocol_->epoch_of(s) != epoch_) {
      state_class_[s] = foreign_class;
    } else {
      const pp::StateId b = protocol_->base_of(s);
      state_class_[s] = b <= 1 ? 0 : static_cast<std::uint16_t>(b - 1);
    }
  }
  std::fill(target_.begin(), target_.end(), 0u);
  if (n_ >= 3) {
    const pp::Counts base_target = stable_counts(base, n_);
    target_[0] = base_target[0] + base_target[1];
    for (pp::StateId b = 2; b < base_states; ++b) {
      target_[static_cast<std::size_t>(b) - 1] = base_target[b];
    }
  }
  recount(counts);
}

void HealingOracle::reset(const pp::Counts& counts) {
  // reset() arrives from ChurnSimulator::run(); the configuration was last
  // seen by configure()/on_external_change(), but recount defensively.
  PPK_EXPECTS(counts.size() == protocol_->num_states());
  recount(counts);
}

void HealingOracle::on_external_change(const pp::Counts& counts) {
  // Churn may have changed the population size; rebuild the target for the
  // same epoch.  The RecoveryManager follows up with configure() when the
  // epoch itself moves.
  configure(epoch_, counts);
}

void HealingOracle::recount(const pp::Counts& counts) {
  std::fill(current_.begin(), current_.end(), 0u);
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    current_[state_class_[s]] += counts[s];
  }
  mismatch_ = 0;
  for (std::size_t c = 0; c < target_.size(); ++c) {
    if (current_[c] != target_[c]) ++mismatch_;
  }
}

void HealingOracle::bump(std::uint16_t cls, int delta) {
  const bool was_ok = current_[cls] == target_[cls];
  current_[cls] = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(current_[cls]) + delta);
  const bool now_ok = current_[cls] == target_[cls];
  if (was_ok && !now_ok) ++mismatch_;
  if (!was_ok && now_ok) --mismatch_;
}

void HealingOracle::on_transition(pp::StateId p, pp::StateId q,
                                  pp::StateId p_next, pp::StateId q_next) {
  bump(state_class_[p], -1);
  bump(state_class_[q], -1);
  bump(state_class_[p_next], +1);
  bump(state_class_[q_next], +1);
}

// --- RecoveryManager -------------------------------------------------------

RecoveryManager::RecoveryManager(const SelfHealingKPartitionProtocol& protocol,
                                 pp::ChurnSimulator& sim)
    : protocol_(&protocol), sim_(&sim), oracle_(protocol) {
  sim_->set_default_join_state(
      protocol_->encode(epoch_, protocol_->base().initial_state()));
  sim_->set_fault_observer(
      [this](const pp::FaultRecord& record) { handle_fault(record); });
  sim_->set_observer(
      [this](const pp::SimEvent& event) { handle_transition(event); });
  refresh();
}

void RecoveryManager::refresh() {
  const pp::Counts& counts = sim_->population().counts();
  std::int64_t in_epoch = 0;
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    if (protocol_->epoch_of(s) == epoch_) in_epoch += counts[s];
  }
  old_remaining_ =
      static_cast<std::int64_t>(sim_->population().size()) - in_epoch;
  oracle_.configure(epoch_, counts);
}

void RecoveryManager::handle_fault(const pp::FaultRecord& record) {
  if (record.kind == pp::FaultKind::kReset) return;  // our own surgery

  const pp::StateId fresh =
      protocol_->encode(epoch_, protocol_->base().initial_state());
  bool disruptive = false;
  switch (record.kind) {
    case pp::FaultKind::kCrash:
      // Only a departure from the current epoch loses a slot the current
      // bookkeeping counts on; stragglers were going to be reset anyway.
      disruptive = protocol_->epoch_of(record.old_state) == epoch_;
      break;
    case pp::FaultKind::kJoin:
      // Joins in the current epoch's initial state are absorbed for free.
      // Anything else (stale or bogus state) is normalized into a fresh
      // joiner, which makes the join benign without a wave.
      if (record.new_state != fresh) {
        sim_->overwrite_state(record.agent, fresh, &oracle_);
      }
      break;
    case pp::FaultKind::kCorrupt:
      // The lost old slot damages the books iff it was current-epoch; the
      // bogus new state is surgically normalized either way, so foreign
      // (in particular "future") epochs never appear spontaneously and the
      // two-live-epochs invariant behind Z_3 holds.
      disruptive = protocol_->epoch_of(record.old_state) == epoch_;
      if (record.new_state != fresh) {
        sim_->overwrite_state(record.agent, fresh, &oracle_);
      }
      break;
    case pp::FaultKind::kSleep:
      break;  // a stuck agent responds again later; no state is lost
    case pp::FaultKind::kReset:
      break;
  }

  refresh();
  // If the crash took the wave's last carrier, no interaction can ever
  // convert anyone into the current epoch again -- re-seed it.  (Advancing
  // the epoch instead would put three epochs in play and break the Z_3
  // cyclic order.)
  if (old_remaining_ == static_cast<std::int64_t>(sim_->population().size())) {
    seed_current_epoch();
    refresh();
  }
  // A fault can also retire the last old-epoch straggler (it crashed, or
  // was corrupt-normalized into the current epoch); handle_transition never
  // sees that, so a wave waiting on the stragglers would be stranded
  // forever.  Re-evaluating through request_wave releases it -- or clears
  // it, if the fault luckily left the survivors stable.
  if (old_remaining_ == 0 && wave_pending_) request_wave(last_disruption_at_);
  if (disruptive) request_wave(record.at);
}

void RecoveryManager::request_wave(std::uint64_t at) {
  last_disruption_at_ = at;
  wave_pending_ = true;
  // Lucky damage: if the survivors already sit in the stable pattern of
  // the new population size (e.g. the crash removed exactly a leftover
  // free agent), no repair is needed.
  if (oracle_.stable()) {
    wave_pending_ = false;
    return;
  }
  // Serialize waves: while stragglers of the previous epoch remain, the
  // new wave waits (handle_transition starts it on completion).
  if (old_remaining_ == 0) start_wave();
}

void RecoveryManager::start_wave() {
  wave_pending_ = false;
  epoch_ = SelfHealingKPartitionProtocol::next_epoch(epoch_);
  ++waves_;
  PPK_OBS_HOOK(obs_, on_event("recovery.waves"));
  PPK_OBS_HOOK(obs_, set_gauge("recovery.epoch",
                               static_cast<std::int64_t>(epoch_)));
  sim_->set_default_join_state(
      protocol_->encode(epoch_, protocol_->base().initial_state()));
  seed_current_epoch();
  refresh();
}

void RecoveryManager::seed_current_epoch() {
  const pp::StateId fresh =
      protocol_->encode(epoch_, protocol_->base().initial_state());
  // Pick the lowest-index awake agent so the choice is deterministic and
  // the token can spread immediately.
  std::uint32_t seed_agent = 0;
  for (std::uint32_t a = 0; a < sim_->population().size(); ++a) {
    if (!sim_->asleep(a)) {
      seed_agent = a;
      break;
    }
  }
  sim_->overwrite_state(seed_agent, fresh, &oracle_);
  PPK_OBS_HOOK(obs_, on_event("recovery.reseeds"));
}

void RecoveryManager::handle_transition(const pp::SimEvent& event) {
  if (old_remaining_ == 0) return;
  const auto in_epoch = [this](pp::StateId s) {
    return protocol_->epoch_of(s) == epoch_ ? 1 : 0;
  };
  old_remaining_ -= in_epoch(event.p_next) + in_epoch(event.q_next) -
                    in_epoch(event.p) - in_epoch(event.q);
  PPK_ASSERT(old_remaining_ >= 0);
  if (old_remaining_ == 0 && wave_pending_) start_wave();
}

}  // namespace ppk::core
