// Uniform bipartition on ARBITRARY connected interaction graphs under
// global fairness.
//
// The repo's 4-state `BipartitionProtocol` (bipartition.hpp) silently
// assumes a complete interaction graph: two `initial` agents that are not
// neighbours can never pair, so on a star with >= 3 leaves the leaves can
// never all leave `initial` and the protocol fails (machine-checked by the
// arbitrary-graph verifier as the negative control).  The follow-up paper
// *Uniform Bipartition with Arbitrary Communication Graphs* (Yasumi-
// Ooshita-Inoue, arXiv:2011.08366) closes that gap; this file implements
// the repo's arbitrary-graph family in that paper's spirit: constant state
// count, asymmetric rules, designated-initial-state model, correctness on
// every connected graph under global fairness.
//
// Construction ("signal relay"), 5 states:
//   initial         f = red    -- designated initial state
//   r, b            f = red/blue, settled colour, no signal
//   r^, b^          f = red/blue, settled colour CARRYING one signal
//
// A signal means "one red surplus is in flight".  Rules (written
// orientation; mirrored):
//   1. pair     (initial, initial) -> (r, b)
//   2. deposit  (initial, r) -> (r, r^)     the initiator settles red and
//              (initial, b) -> (r, b^)      parks a signal on its neighbour
//   3. clear    (initial, r^) -> (b, r)     the signal pays for a blue
//              (initial, b^) -> (b, b)      settlement and disappears
//   4. hop      (x^, y) -> (x, y^)          signals random-walk along edges
//                                           (colour of both hosts unchanged)
//   5. cancel   (r^, x^) -> (b, x)          two signals meeting on an edge
//                                           cancel by recolouring an r host
//                                           ((b^, b^) is null: no r to flip)
//
// Invariants: #r - #b == #signals, and #initial + #signals == n (mod 2).
// A configuration with #initial == 0 and #signals == n mod 2 is stable:
// with at most one signal left no cancel or clear can ever fire again, and
// hops preserve both hosts' outputs.  The converse holds with exactly one
// exception: on odd n the configuration {one initial, #r == #b, no signal}
// is already output-stable (its only effective rules are deposits, which
// preserve every output and land in the pattern one interaction later).
// The count pattern is therefore a sound stopping rule that every fair
// execution reaches, measuring convergence to the canonical stable pattern
// -- at most one effective interaction after output stabilization.  Signals
// keep hopping forever in the stable regime, so every agent's OUTPUT
// stabilizes even though states do not (the bottom SCCs of the per-agent
// configuration graph are output-constant and uniform; the arbitrary-graph
// verifier checks exactly this).
//
// Under weak fairness this protocol is NOT correct even on the complete
// graph -- an adversary can park the odd signals on b hosts and schedule
// every pair at null moments (see docs/fairness.md); it needs the global
// fairness its source paper assumes.

#pragma once

#include <memory>
#include <optional>

#include "pp/protocol.hpp"
#include "pp/stability.hpp"

namespace ppk::core {

/// The 5-state signal-relay bipartition family for arbitrary connected
/// graphs (header comment has the construction and invariants).
class GraphBipartitionProtocol final : public pp::Protocol {
 public:
  GraphBipartitionProtocol() = default;

  [[nodiscard]] std::string name() const override {
    return "graph-bipartition";
  }
  [[nodiscard]] pp::StateId num_states() const override { return 5; }
  [[nodiscard]] pp::StateId initial_state() const override { return kInitial; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;

  static constexpr pp::StateId kInitial = 0;
  static constexpr pp::StateId kR = 1;       // settled red
  static constexpr pp::StateId kB = 2;       // settled blue
  static constexpr pp::StateId kRSig = 3;    // red host carrying a signal
  static constexpr pp::StateId kBSig = 4;    // blue host carrying a signal

  [[nodiscard]] static bool has_signal(pp::StateId s) noexcept {
    return s == kRSig || s == kBSig;
  }

 private:
  [[nodiscard]] std::optional<pp::Transition> rule(pp::StateId p,
                                                   pp::StateId q) const;
};

/// Exact stopping rule for GraphBipartitionProtocol on a population of n
/// agents: stable iff #initial == 0 and #{r^, b^} == n mod 2 (the settled
/// states r/b absorb the rest).  Count-level, so it works on every engine.
[[nodiscard]] std::unique_ptr<pp::StabilityOracle>
graph_bipartition_stable_oracle(const GraphBipartitionProtocol& protocol,
                                std::uint64_t n);

}  // namespace ppk::core
