// Approximate k-partition baseline (a *reconstruction* in the spirit of
// Delporte-Gallet et al. [14], whose transition rules the paper does not
// reproduce -- see DESIGN.md, "Substitutions").
//
// Mechanism: binary token splitting.  An agent's state is (group g, level
// l).  All agents start at (0, 1).  When two agents in the *same* state
// (g, l) with l <= L meet, both advance a level and one of them moves to
// group g + 2^(l-1) (if that is still < k).  After L = ceil(log2 k) levels
// every group index in [0, k) has been reachable; level L+1 states are
// final.  Terminal configurations have at most one agent per non-final
// state, so each group ends with roughly n / 2^(splits) members --
// >= n/(2k) up to the <= L stranded agents per group chain, which is the
// guarantee [14] is quoted for in the paper's related-work section.
//
// The splitting rule (g,l),(g,l) -> ((g,l+1),(g+2^(l-1),l+1)) maps equal
// states to distinct states, so this protocol is deliberately *asymmetric*
// (it uses the initiator/responder distinction); it serves as a baseline
// only and makes the contrast with the paper's symmetric protocol visible
// in benches.

#pragma once

#include "pp/protocol.hpp"

namespace ppk::core {

class ApproxPartitionProtocol final : public pp::Protocol {
 public:
  /// Requires 2 <= k <= 256.
  explicit ApproxPartitionProtocol(pp::GroupId k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override;
  [[nodiscard]] pp::StateId initial_state() const override { return 0; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override { return k_; }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;

  [[nodiscard]] unsigned num_levels() const noexcept { return levels_; }

  /// State id for (group, level), level in 1..num_levels().
  [[nodiscard]] pp::StateId state(pp::GroupId group, unsigned level) const;

 private:
  pp::GroupId k_;
  unsigned split_levels_;  // L = ceil(log2 k); splits happen at 1..L
  unsigned levels_;        // L + 1 (the final, non-splitting level)
};

}  // namespace ppk::core
