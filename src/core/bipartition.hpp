// The symmetric 4-state uniform bipartition protocol with designated
// initial states under global fairness (Yasumi et al. [25]) -- the k = 2
// base case of the paper's protocol, implemented standalone so the test
// suite can check state-for-state agreement with KPartitionProtocol(2).
//
// States: initial, initial', g1, g2.  Rules:
//   (initial,  initial)  -> (initial', initial')
//   (initial', initial') -> (initial,  initial)
//   (initial,  initial') -> (g1, g2)       -- the pairing rule: partners
//                                              join opposite groups
//   (g,        ini)      -> (g, flip(ini)) -- keeps mixed free pairs
//                                              reachable (global fairness)

#pragma once

#include "pp/protocol.hpp"

namespace ppk::core {

class BipartitionProtocol final : public pp::Protocol {
 public:
  static constexpr pp::StateId kInitial = 0;
  static constexpr pp::StateId kInitialPrime = 1;
  static constexpr pp::StateId kG1 = 2;
  static constexpr pp::StateId kG2 = 3;

  [[nodiscard]] std::string name() const override { return "bipartition"; }
  [[nodiscard]] pp::StateId num_states() const override { return 4; }
  [[nodiscard]] pp::StateId initial_state() const override { return kInitial; }

  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    const bool p_free = p <= kInitialPrime;
    const bool q_free = q <= kInitialPrime;
    if (p_free && q_free) {
      if (p == q) {
        const pp::StateId next = p == kInitial ? kInitialPrime : kInitial;
        return {next, next};
      }
      return p == kInitial ? pp::Transition{kG1, kG2}
                           : pp::Transition{kG2, kG1};
    }
    if (q_free) return {p, q == kInitial ? kInitialPrime : kInitial};
    if (p_free) return {p == kInitial ? kInitialPrime : kInitial, q};
    return {p, q};
  }

  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return s == kG2 ? pp::GroupId{1} : pp::GroupId{0};  // f(ini) = 1
  }

  [[nodiscard]] pp::GroupId num_groups() const override { return 2; }

  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    switch (s) {
      case kInitial: return "initial";
      case kInitialPrime: return "initial'";
      case kG1: return "g1";
      default: return "g2";
    }
  }
};

}  // namespace ppk::core
