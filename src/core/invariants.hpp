// Machine-checkable statements of the paper's correctness lemmas.
//
//  - Lemma 1 (the counting invariant):  for every reachable configuration
//    and every x in 1..k,
//        #g_x = sum_{p=x+1..k-1} #m_p + sum_{q=x..k-2} #d_q + #g_k.
//    lemma1_holds() evaluates the formula on a count vector; the tests check
//    it along random executions and (exhaustively) over every reachable
//    configuration for small (n, k).
//
//  - Lemmas 4-6 (the unique stable pattern):  with r = n mod k, the stable
//    configurations are exactly those with
//        #g_x = floor(n/k)+1  for x <= r-1,
//        #g_x = floor(n/k)    for x >= r,
//        plus one free agent (initial or initial') if r = 1,
//        or one agent in m_r if r >= 2,
//    and nothing else.  stable_pattern_oracle() packages this as the O(1)
//    stopping criterion used by all simulations of the protocol.

#pragma once

#include <cstdint>
#include <memory>

#include "core/kpartition.hpp"
#include "pp/population.hpp"
#include "pp/stability.hpp"

namespace ppk::core {

/// Evaluates the Lemma 1 formula on a configuration.
bool lemma1_holds(const KPartitionProtocol& protocol,
                  const pp::Counts& counts);

/// The stable count pattern of Lemmas 4-6 for a population of n agents.
/// Classes: one merged class for {initial, initial'}, one per other state.
pp::Counts stable_counts(const KPartitionProtocol& protocol, std::uint32_t n);

/// True iff `counts` matches the stable pattern (treating initial and
/// initial' as interchangeable).
bool matches_stable_pattern(const KPartitionProtocol& protocol,
                            std::uint32_t n, const pp::Counts& counts);

/// O(1)-per-interaction stability oracle for the protocol (see
/// pp::CountPatternOracle).
std::unique_ptr<pp::StabilityOracle> stable_pattern_oracle(
    const KPartitionProtocol& protocol, std::uint32_t n);

/// Like stable_pattern_oracle, but rebuilds its target whenever the
/// population changes mid-run (ChurnSimulator announces churn through
/// on_external_change), so a no-recovery run can honestly ask whether the
/// survivors ever reach the uniform pattern of the *surviving* population.
/// Never stable while fewer than 3 agents remain.
std::unique_ptr<pp::StabilityOracle> churn_aware_stable_oracle(
    const KPartitionProtocol& protocol);

}  // namespace ppk::core
