// R-generalized partition (the extension the paper mentions was published
// after its conference version, Umino et al. [24]): divide the population
// into k groups whose sizes follow a given ratio vector R = (r1..rk).
//
// Construction: run the paper's uniform K-partition protocol for
// K = r1 + ... + rk "slots" and output-map slot x to the group j whose
// ratio interval contains x.  Each slot stabilizes to floor(n/K) or
// floor(n/K)+1 agents, so group j ends with between rj*floor(n/K) and
// rj*(floor(n/K)+1) agents -- sizes follow R with at most rj agents of
// slack, the natural generalization of "within one" to ratios.  The state
// count is 3K - 2 and the protocol stays symmetric with designated initial
// states under global fairness; correctness is inherited verbatim from
// Theorem 1.

#pragma once

#include <numeric>
#include <vector>

#include "core/kpartition.hpp"
#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::core {

class RatioPartitionProtocol final : public pp::Protocol {
 public:
  /// `ratio` must be non-empty with every entry >= 1 and sum >= 2.
  explicit RatioPartitionProtocol(std::vector<std::uint32_t> ratio)
      : ratio_(std::move(ratio)),
        total_(std::accumulate(ratio_.begin(), ratio_.end(), 0u)),
        inner_(static_cast<pp::GroupId>(total_)) {
    PPK_EXPECTS(!ratio_.empty());
    for (auto r : ratio_) PPK_EXPECTS(r >= 1);
    PPK_EXPECTS(total_ >= 2 && total_ <= 1000);
    slot_to_group_.reserve(total_);
    for (pp::GroupId j = 0; j < ratio_.size(); ++j) {
      for (std::uint32_t rep = 0; rep < ratio_[j]; ++rep) {
        slot_to_group_.push_back(j);
      }
    }
  }

  [[nodiscard]] std::string name() const override {
    std::string out = "ratio-partition(R=";
    for (std::size_t j = 0; j < ratio_.size(); ++j) {
      if (j > 0) out += ':';
      out += std::to_string(ratio_[j]);
    }
    return out + ")";
  }

  [[nodiscard]] pp::StateId num_states() const override {
    return inner_.num_states();
  }
  [[nodiscard]] pp::StateId initial_state() const override {
    return inner_.initial_state();
  }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override {
    return inner_.delta(p, q);
  }
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override {
    return slot_to_group_[inner_.group(s)];
  }
  [[nodiscard]] pp::GroupId num_groups() const override {
    return static_cast<pp::GroupId>(ratio_.size());
  }
  [[nodiscard]] std::string state_name(pp::StateId s) const override {
    return inner_.state_name(s);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& ratio() const noexcept {
    return ratio_;
  }
  /// The underlying uniform K-partition protocol (K = sum of the ratio).
  [[nodiscard]] const KPartitionProtocol& inner() const noexcept {
    return inner_;
  }

 private:
  std::vector<std::uint32_t> ratio_;
  std::uint32_t total_;
  KPartitionProtocol inner_;
  std::vector<pp::GroupId> slot_to_group_;
};

}  // namespace ppk::core
