#include "core/invariants.hpp"

#include "util/assert.hpp"

namespace ppk::core {

bool lemma1_holds(const KPartitionProtocol& protocol,
                  const pp::Counts& counts) {
  const pp::GroupId k = protocol.k();
  PPK_EXPECTS(counts.size() == protocol.num_states());

  const std::uint64_t gk = counts[protocol.g(k)];
  for (pp::GroupId x = 1; x <= k; ++x) {
    std::uint64_t rhs = gk;
    for (pp::GroupId p = static_cast<pp::GroupId>(x + 1); p <= k - 1; ++p) {
      if (p >= 2) rhs += counts[protocol.m(p)];
    }
    for (pp::GroupId q = x; q <= k - 2; ++q) {
      rhs += counts[protocol.d(q)];
    }
    if (counts[protocol.g(x)] != rhs) return false;
  }
  return true;
}

pp::Counts stable_counts(const KPartitionProtocol& protocol, std::uint32_t n) {
  const pp::GroupId k = protocol.k();
  PPK_EXPECTS(n >= 3);
  const std::uint32_t floor_nk = n / k;
  const std::uint32_t r = n % k;

  pp::Counts target(protocol.num_states(), 0);
  for (pp::GroupId x = 1; x <= k; ++x) {
    target[protocol.g(x)] = floor_nk + (r >= 2 && x <= r - 1 ? 1 : 0);
  }
  if (r == 1) {
    target[KPartitionProtocol::kInitial] = 1;  // one free agent remains
  } else if (r >= 2) {
    target[protocol.m(static_cast<pp::GroupId>(r))] = 1;
  }
  return target;
}

bool matches_stable_pattern(const KPartitionProtocol& protocol,
                            std::uint32_t n, const pp::Counts& counts) {
  PPK_EXPECTS(counts.size() == protocol.num_states());
  const pp::Counts target = stable_counts(protocol, n);
  // The two free states form one equivalence class (the leftover agent may
  // be initial or initial'); all other states must match exactly.
  const std::uint32_t free_now = counts[0] + counts[1];
  const std::uint32_t free_target = target[0] + target[1];
  if (free_now != free_target) return false;
  for (pp::StateId s = 2; s < counts.size(); ++s) {
    if (counts[s] != target[s]) return false;
  }
  return true;
}

std::unique_ptr<pp::StabilityOracle> stable_pattern_oracle(
    const KPartitionProtocol& protocol, std::uint32_t n) {
  const pp::StateId num_states = protocol.num_states();
  const pp::Counts target_by_state = stable_counts(protocol, n);

  // Merge {initial, initial'} into class 0; state s >= 2 gets class s - 1.
  std::vector<std::uint16_t> state_class(num_states);
  state_class[0] = 0;
  state_class[1] = 0;
  for (pp::StateId s = 2; s < num_states; ++s) {
    state_class[s] = static_cast<std::uint16_t>(s - 1);
  }
  std::vector<std::uint32_t> target(num_states - 1u, 0);
  target[0] = target_by_state[0] + target_by_state[1];
  for (pp::StateId s = 2; s < num_states; ++s) {
    target[static_cast<std::size_t>(s) - 1] = target_by_state[s];
  }
  return std::make_unique<pp::CountPatternOracle>(std::move(state_class),
                                                  std::move(target));
}

}  // namespace ppk::core
