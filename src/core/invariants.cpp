#include "core/invariants.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ppk::core {

bool lemma1_holds(const KPartitionProtocol& protocol,
                  const pp::Counts& counts) {
  const pp::GroupId k = protocol.k();
  PPK_EXPECTS(counts.size() == protocol.num_states());

  const std::uint64_t gk = counts[protocol.g(k)];
  for (pp::GroupId x = 1; x <= k; ++x) {
    std::uint64_t rhs = gk;
    for (pp::GroupId p = static_cast<pp::GroupId>(x + 1); p <= k - 1; ++p) {
      if (p >= 2) rhs += counts[protocol.m(p)];
    }
    for (pp::GroupId q = x; q <= k - 2; ++q) {
      rhs += counts[protocol.d(q)];
    }
    if (counts[protocol.g(x)] != rhs) return false;
  }
  return true;
}

pp::Counts stable_counts(const KPartitionProtocol& protocol, std::uint32_t n) {
  const pp::GroupId k = protocol.k();
  PPK_EXPECTS(n >= 3);
  const std::uint32_t floor_nk = n / k;
  const std::uint32_t r = n % k;

  pp::Counts target(protocol.num_states(), 0);
  for (pp::GroupId x = 1; x <= k; ++x) {
    target[protocol.g(x)] = floor_nk + (r >= 2 && x <= r - 1 ? 1 : 0);
  }
  if (r == 1) {
    target[KPartitionProtocol::kInitial] = 1;  // one free agent remains
  } else if (r >= 2) {
    target[protocol.m(static_cast<pp::GroupId>(r))] = 1;
  }
  return target;
}

bool matches_stable_pattern(const KPartitionProtocol& protocol,
                            std::uint32_t n, const pp::Counts& counts) {
  PPK_EXPECTS(counts.size() == protocol.num_states());
  const pp::Counts target = stable_counts(protocol, n);
  // The two free states form one equivalence class (the leftover agent may
  // be initial or initial'); all other states must match exactly.
  const std::uint32_t free_now = counts[0] + counts[1];
  const std::uint32_t free_target = target[0] + target[1];
  if (free_now != free_target) return false;
  for (pp::StateId s = 2; s < counts.size(); ++s) {
    if (counts[s] != target[s]) return false;
  }
  return true;
}

namespace {

/// stable_pattern_oracle's logic, minus the fixed-n assumption: the target
/// pattern is a function of the live population size and is recomputed on
/// every reset() / on_external_change().  Kept simple (full recount per
/// rebuild, O(1) per transition) -- churn events are rare next to
/// interactions.
class ChurnAwareStableOracle final : public pp::StabilityOracle {
 public:
  explicit ChurnAwareStableOracle(const KPartitionProtocol& protocol)
      : protocol_(&protocol),
        current_(protocol.num_states(), 0),
        target_(protocol.num_states(), 0) {}

  void reset(const pp::Counts& counts) override { rebuild(counts); }

  void on_external_change(const pp::Counts& counts) override {
    rebuild(counts);
  }

  void on_transition(pp::StateId p, pp::StateId q, pp::StateId p_next,
                     pp::StateId q_next) override {
    bump(p, -1);
    bump(q, -1);
    bump(p_next, +1);
    bump(q_next, +1);
  }

  [[nodiscard]] bool stable() const override {
    return n_ >= 3 && mismatch_ == 0;
  }

 private:
  /// {initial, initial'} count as one class; other states stand alone.
  [[nodiscard]] static std::size_t cls(pp::StateId s) noexcept {
    return s <= 1 ? 0 : static_cast<std::size_t>(s) - 1;
  }

  void rebuild(const pp::Counts& counts) {
    PPK_EXPECTS(counts.size() == protocol_->num_states());
    n_ = 0;
    for (auto c : counts) n_ += c;
    std::fill(current_.begin(), current_.end(), 0u);
    std::fill(target_.begin(), target_.end(), 0u);
    for (pp::StateId s = 0; s < counts.size(); ++s) {
      current_[cls(s)] += counts[s];
    }
    if (n_ >= 3) {
      const pp::Counts by_state = stable_counts(*protocol_, n_);
      for (pp::StateId s = 0; s < by_state.size(); ++s) {
        target_[cls(s)] += by_state[s];
      }
    }
    mismatch_ = 0;
    for (std::size_t c = 0; c + 1 < current_.size(); ++c) {
      if (current_[c] != target_[c]) ++mismatch_;
    }
  }

  void bump(pp::StateId s, int delta) {
    const std::size_t c = cls(s);
    const bool was_ok = current_[c] == target_[c];
    current_[c] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(current_[c]) + delta);
    const bool now_ok = current_[c] == target_[c];
    if (was_ok && !now_ok) ++mismatch_;
    if (!was_ok && now_ok) --mismatch_;
  }

  const KPartitionProtocol* protocol_;
  std::uint32_t n_ = 0;
  /// Indexed by class; the last slot (class of the top state) is unused
  /// padding so cls() needs no bound checks.
  std::vector<std::uint32_t> current_;
  std::vector<std::uint32_t> target_;
  std::uint32_t mismatch_ = 0;
};

}  // namespace

std::unique_ptr<pp::StabilityOracle> churn_aware_stable_oracle(
    const KPartitionProtocol& protocol) {
  return std::make_unique<ChurnAwareStableOracle>(protocol);
}

std::unique_ptr<pp::StabilityOracle> stable_pattern_oracle(
    const KPartitionProtocol& protocol, std::uint32_t n) {
  const pp::StateId num_states = protocol.num_states();
  const pp::Counts target_by_state = stable_counts(protocol, n);

  // Merge {initial, initial'} into class 0; state s >= 2 gets class s - 1.
  std::vector<std::uint16_t> state_class(num_states);
  state_class[0] = 0;
  state_class[1] = 0;
  for (pp::StateId s = 2; s < num_states; ++s) {
    state_class[s] = static_cast<std::uint16_t>(s - 1);
  }
  std::vector<std::uint32_t> target(num_states - 1u, 0);
  target[0] = target_by_state[0] + target_by_state[1];
  for (pp::StateId s = 2; s < num_states; ++s) {
    target[static_cast<std::size_t>(s) - 1] = target_by_state[s];
  }
  return std::make_unique<pp::CountPatternOracle>(std::move(state_class),
                                                  std::move(target));
}

}  // namespace ppk::core
