// Algorithm 1 of the paper: the symmetric uniform k-partition protocol with
// designated initial states and 3k-2 states per agent.
//
// State set (Section 3):  Q = I u G u M u D with
//   I = {initial, initial'}            -- "free" agents, f = 1
//   G = {g1..gk}                       -- committed group members, f(gi) = i
//   M = {m2..m(k-1)}                   -- builders, f(mi) = i
//   D = {d1..d(k-2)}                   -- demolishers, f(di) = 1
//
// Transition rules 1-10 are implemented verbatim; rules are written in the
// paper's orientation and mirrored automatically, so the realized ordered
// transition function is swap-consistent and (machine-checked) symmetric.
//
// Degenerate case k = 2: M and D are empty (|Q| = 4) and rule 5 becomes
// (initial, initial') -> (g1, g2); the paper notes the protocol then equals
// the uniform bipartition protocol of Yasumi et al. [25].

#pragma once

#include <optional>

#include "pp/protocol.hpp"

namespace ppk::core {

class KPartitionProtocol final : public pp::Protocol {
 public:
  /// Requires k >= 2.  (The paper additionally assumes n >= 3 at run time;
  /// that is a property of the population, not of the protocol.)
  explicit KPartitionProtocol(pp::GroupId k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override;
  [[nodiscard]] pp::StateId initial_state() const override { return kInitial; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override { return k_; }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;
  /// The table's true symmetry group.  For k = 2 it has order 4: the
  /// free-flip initial <-> initial' times g1 <-> g2 (no rule pins a group
  /// index or a specific free state).  For k >= 3 the group is trivial:
  /// rules 9 and 10 release demolished agents as the specific state
  /// `initial`, which breaks the free-flip, and the builder/demolisher
  /// chains pin every group index (machine-checked in the tests).
  [[nodiscard]] pp::SymmetrySpec symmetry() const override;

  [[nodiscard]] pp::GroupId k() const noexcept { return k_; }

  // --- State encoding (public so tests and analysis can name states) ---
  static constexpr pp::StateId kInitial = 0;       // "initial"
  static constexpr pp::StateId kInitialPrime = 1;  // "initial'"

  /// g_x for x in 1..k.
  [[nodiscard]] pp::StateId g(pp::GroupId x) const;
  /// m_p for p in 2..k-1 (k >= 3).
  [[nodiscard]] pp::StateId m(pp::GroupId p) const;
  /// d_q for q in 1..k-2 (k >= 3).
  [[nodiscard]] pp::StateId d(pp::GroupId q) const;

  [[nodiscard]] bool is_free(pp::StateId s) const noexcept { return s <= 1; }
  [[nodiscard]] bool is_g(pp::StateId s) const noexcept;
  [[nodiscard]] bool is_m(pp::StateId s) const noexcept;
  [[nodiscard]] bool is_d(pp::StateId s) const noexcept;
  /// Inverse of g()/m()/d(): the index x/p/q of a non-free state.
  [[nodiscard]] pp::GroupId index_of(pp::StateId s) const;

 private:
  /// The rule set in the paper's written orientation; nullopt = no rule.
  [[nodiscard]] std::optional<pp::Transition> rule(pp::StateId p,
                                                   pp::StateId q) const;

  pp::GroupId k_;
};

/// Ablation protocol for Section 3.2: the "basic strategy" with transitions
/// 1-7 only (no D states, 2k states total).  The paper shows it is
/// *incorrect*: for example with n = 12, k = 4 agents can reach the silent
/// configuration {g1:4, g2:4, m3:4}, whose partition (4,4,4,0) is not
/// uniform.  Exposed so the repo's verifier and benches can demonstrate
/// exactly why the D states are needed.  Requires k >= 3 (for k = 2 the
/// basic strategy and the full protocol coincide).
class BasicStrategyProtocol final : public pp::Protocol {
 public:
  explicit BasicStrategyProtocol(pp::GroupId k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] pp::StateId num_states() const override;
  [[nodiscard]] pp::StateId initial_state() const override { return 0; }
  [[nodiscard]] pp::Transition delta(pp::StateId p,
                                     pp::StateId q) const override;
  [[nodiscard]] pp::GroupId group(pp::StateId s) const override;
  [[nodiscard]] pp::GroupId num_groups() const override { return k_; }
  [[nodiscard]] std::string state_name(pp::StateId s) const override;
  /// Free-flip only (rules 5-7 name explicit g/m indices, k >= 3 always).
  [[nodiscard]] pp::SymmetrySpec symmetry() const override;

  [[nodiscard]] pp::StateId g(pp::GroupId x) const;
  [[nodiscard]] pp::StateId m(pp::GroupId p) const;

 private:
  [[nodiscard]] std::optional<pp::Transition> rule(pp::StateId p,
                                                   pp::StateId q) const;

  pp::GroupId k_;
};

}  // namespace ppk::core
