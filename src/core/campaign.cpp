#include "core/campaign.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "io/atomic_file.hpp"
#include "io/json.hpp"
#include "io/json_reader.hpp"
#include "io/snapshot_io.hpp"
#include "obs/sink.hpp"
#include "pp/adversarial.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ppk::core {

std::uint32_t CampaignResult::completed_count() const {
  std::uint32_t count = 0;
  for (const auto& t : trials) count += t.censored ? 0u : 1u;
  return count;
}

std::uint32_t CampaignResult::retried_count() const {
  std::uint32_t count = 0;
  for (const auto& t : trials) count += t.retries > 0 ? 1u : 0u;
  return count;
}

std::uint32_t CampaignResult::failed_count() const {
  std::uint32_t count = 0;
  for (const auto& t : trials) count += t.failed ? 1u : 0u;
  return count;
}

std::uint32_t CampaignResult::censored_count() const {
  std::uint32_t count = 0;
  for (const auto& t : trials) count += t.censored ? 1u : 0u;
  return count;
}

namespace {

using pp::Counts;
using pp::Engine;
using pp::MonteCarloOptions;
using pp::StateId;

/// Sub-stream of a trial's seed that seeds retry attempt r (offset by r),
/// keeping retries independent of the original attempt yet pure functions
/// of (master_seed, trial, retry).
constexpr std::uint64_t kRetryStream = 0x7265'7472ULL;  // "retr"

/// Largest log2-histogram bucket index accepted from a checkpoint file; a
/// sub_bits = 8 histogram over the full uint64 range stays well below it.
constexpr std::uint64_t kMaxLogBucket = 1ULL << 16;

/// Interaction budget of retry attempt `retry`: the base budget scaled by
/// backoff^retry, saturating at UINT64_MAX.  Double arithmetic is IEEE-
/// deterministic, so every process computes identical budgets.
std::uint64_t attempt_budget(std::uint64_t base, double backoff,
                             std::uint32_t retry) {
  double budget = static_cast<double>(base);
  for (std::uint32_t i = 0; i < retry; ++i) budget *= backoff;
  if (budget >= 1.8e19) return UINT64_MAX;
  return static_cast<std::uint64_t>(budget);
}

// --- metrics registry (de)serialization ------------------------------------
//
// The registry's own write_json emits bucket *bounds* (doubles) for human
// consumption; exact restoration needs bucket *indices*, so checkpoints
// carry their own registry encoding: counters and gauges as exact integer
// tokens, histograms as (layout parameters, [bucket index, count] pairs).

void write_registry(io::JsonWriter& json, const obs::MetricsRegistry& reg) {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : reg.counters()) json.member(name, c.value());
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : reg.gauges()) {
    json.key(name);
    json.begin_object();
    json.member("set", g.present());
    json.member("value", static_cast<std::int64_t>(g.value()));
    json.end_object();
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : reg.histograms()) {
    json.key(name);
    json.begin_object();
    if (h.layout() == obs::Histogram::Layout::kLinear) {
      json.member("layout", "linear");
      json.member("lo", h.linear_lo());
      json.member("hi", h.linear_hi());
      json.member("nbuckets", static_cast<std::uint64_t>(h.counts().size()));
    } else {
      json.member("layout", "log2");
      json.member("sub_bits", h.sub_bits());
    }
    json.key("buckets");
    json.begin_array();
    const auto& counts = h.counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      json.begin_array();
      json.value(static_cast<std::uint64_t>(b));
      json.value(counts[b]);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

bool read_registry(const io::JsonValue& v, obs::MetricsRegistry* reg,
                   std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = "metrics: " + reason;
    return false;
  };
  if (!v.is_object()) return fail("not an object");
  const io::JsonValue* counters = v.find("counters");
  const io::JsonValue* gauges = v.find("gauges");
  const io::JsonValue* histograms = v.find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || histograms == nullptr ||
      !histograms->is_object()) {
    return fail("missing section");
  }
  for (std::size_t i = 0; i < counters->keys.size(); ++i) {
    const auto value = counters->items[i].as_u64();
    if (!value) return fail("bad counter " + counters->keys[i]);
    reg->counter(counters->keys[i]).inc(*value);
  }
  for (std::size_t i = 0; i < gauges->keys.size(); ++i) {
    const io::JsonValue& g = gauges->items[i];
    const io::JsonValue* set = g.find("set");
    const io::JsonValue* value = g.find("value");
    if (set == nullptr || !set->is_bool() || value == nullptr) {
      return fail("bad gauge " + gauges->keys[i]);
    }
    const auto v64 = value->as_i64();
    if (!v64) return fail("bad gauge value " + gauges->keys[i]);
    obs::Gauge& gauge = reg->gauge(gauges->keys[i]);
    if (set->as_bool()) gauge.set(*v64);
  }
  for (std::size_t i = 0; i < histograms->keys.size(); ++i) {
    const std::string& name = histograms->keys[i];
    const io::JsonValue& h = histograms->items[i];
    const io::JsonValue* layout = h.find("layout");
    const io::JsonValue* buckets = h.find("buckets");
    if (layout == nullptr || !layout->is_string() || buckets == nullptr ||
        !buckets->is_array()) {
      return fail("bad histogram " + name);
    }
    obs::Histogram* target = nullptr;
    std::uint64_t nbuckets = 0;
    if (layout->as_string() == "linear") {
      const io::JsonValue* lo = h.find("lo");
      const io::JsonValue* hi = h.find("hi");
      const io::JsonValue* nb = h.find("nbuckets");
      const auto lov = lo != nullptr ? lo->as_double() : std::nullopt;
      const auto hiv = hi != nullptr ? hi->as_double() : std::nullopt;
      const auto nbv = nb != nullptr ? nb->as_u64() : std::nullopt;
      if (!lov || !hiv || !nbv) return fail("bad linear layout in " + name);
      const double lo_value = *lov;
      const double hi_value = *hiv;
      const std::uint64_t buckets_n = *nbv;
      if (buckets_n == 0 || buckets_n > kMaxLogBucket ||
          !(hi_value > lo_value)) {
        return fail("bad linear layout in " + name);
      }
      nbuckets = buckets_n;
      target = &reg->histogram(
          name, obs::Histogram::linear(lo_value, hi_value,
                                       static_cast<std::size_t>(buckets_n)));
    } else if (layout->as_string() == "log2") {
      const io::JsonValue* sub = h.find("sub_bits");
      const auto subv = sub != nullptr ? sub->as_u64() : std::nullopt;
      target = &reg->histogram(name);
      if (!subv || *subv != target->sub_bits()) {
        return fail("unsupported log2 sub_bits in " + name);
      }
      nbuckets = kMaxLogBucket;
    } else {
      return fail("unknown layout in " + name);
    }
    for (const io::JsonValue& pair : buckets->items) {
      if (!pair.is_array() || pair.items.size() != 2) {
        return fail("bad bucket in " + name);
      }
      const auto bucket = pair.items[0].as_u64();
      const auto count = pair.items[1].as_u64();
      if (!bucket || !count || *bucket >= nbuckets) {
        return fail("bad bucket in " + name);
      }
      target->add_bucket_count(static_cast<std::size_t>(*bucket), *count);
    }
  }
  return true;
}

// --- trial (de)serialization -----------------------------------------------

void write_marks(io::JsonWriter& json, const std::vector<std::uint64_t>& marks) {
  json.begin_array();
  for (const std::uint64_t mark : marks) json.value(mark);
  json.end_array();
}

bool read_u64_array(const io::JsonValue* v, std::vector<std::uint64_t>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->items.size());
  for (const io::JsonValue& item : v->items) {
    const auto value = item.as_u64();
    if (!value) return false;
    out->push_back(*value);
  }
  return true;
}

void write_completed(io::JsonWriter& json, const CompletedTrial& t) {
  json.begin_object();
  json.member("trial", t.trial);
  json.member("interactions", t.data.result.interactions);
  json.member("effective", t.data.result.effective);
  json.member("stabilized", t.data.result.stabilized);
  json.member("timed_out", t.data.result.timed_out);
  json.member("stalled", t.data.result.stalled);
  json.member("failed", t.data.failed);
  json.member("retries", t.data.retries);
  json.key("watch_marks");
  write_marks(json, t.data.result.watch_marks);
  json.end_object();
}

bool read_completed(const io::JsonValue& v, CompletedTrial* out,
                    std::string* error) {
  const auto fail = [&](const char* reason) {
    if (error != nullptr) *error = std::string("completed trial: ") + reason;
    return false;
  };
  const auto u64 = [&](const char* key) {
    const io::JsonValue* f = v.find(key);
    return f != nullptr ? f->as_u64() : std::nullopt;
  };
  const auto boolean = [&](const char* key) -> std::optional<bool> {
    const io::JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_bool()) return std::nullopt;
    return f->as_bool();
  };
  const auto trial = u64("trial");
  const auto interactions = u64("interactions");
  const auto effective = u64("effective");
  const auto retries = u64("retries");
  const auto stabilized = boolean("stabilized");
  const auto timed_out = boolean("timed_out");
  const auto stalled = boolean("stalled");
  const auto failed = boolean("failed");
  if (!trial || *trial > UINT32_MAX || !interactions || !effective ||
      !retries || *retries > UINT32_MAX || !stabilized || !timed_out ||
      !stalled || !failed) {
    return fail("missing or malformed field");
  }
  out->trial = static_cast<std::uint32_t>(*trial);
  out->data.result.interactions = *interactions;
  out->data.result.effective = *effective;
  out->data.result.stabilized = *stabilized;
  out->data.result.timed_out = *timed_out;
  out->data.result.stalled = *stalled;
  out->data.failed = *failed;
  out->data.retries = static_cast<std::uint32_t>(*retries);
  if (!read_u64_array(v.find("watch_marks"), &out->data.result.watch_marks)) {
    return fail("bad watch_marks");
  }
  return true;
}

void write_inflight(io::JsonWriter& json, const InFlightTrial& t) {
  json.begin_object();
  json.member("trial", t.trial);
  json.member("retry", t.retry);
  json.member("consumed", t.consumed);
  json.member("interactions", t.interactions);
  json.member("effective", t.effective);
  json.member("snapshot", io::serialize_snapshot(t.snapshot));
  json.key("oracle");
  write_marks(json, t.oracle_state);
  json.key("counts");
  json.begin_array();
  for (const std::uint32_t c : t.counts) json.value(c);
  json.end_array();
  json.key("watch_marks");
  write_marks(json, t.watch_marks);
  json.key("metrics");
  write_registry(json, t.metrics);
  json.end_object();
}

bool read_inflight(const io::JsonValue& v, InFlightTrial* out,
                   std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = "in-flight trial: " + reason;
    return false;
  };
  const auto u64 = [&](const char* key) {
    const io::JsonValue* f = v.find(key);
    return f != nullptr ? f->as_u64() : std::nullopt;
  };
  const auto trial = u64("trial");
  const auto retry = u64("retry");
  const auto consumed = u64("consumed");
  const auto interactions = u64("interactions");
  const auto effective = u64("effective");
  if (!trial || *trial > UINT32_MAX || !retry || *retry > UINT32_MAX ||
      !consumed || !interactions || !effective) {
    return fail("missing or malformed field");
  }
  out->trial = static_cast<std::uint32_t>(*trial);
  out->retry = static_cast<std::uint32_t>(*retry);
  out->consumed = *consumed;
  out->interactions = *interactions;
  out->effective = *effective;
  const io::JsonValue* snapshot = v.find("snapshot");
  if (snapshot == nullptr || !snapshot->is_string()) {
    return fail("missing snapshot");
  }
  std::string snap_error;
  auto snap = io::parse_snapshot(snapshot->as_string(), &snap_error);
  if (!snap) return fail(snap_error);
  out->snapshot = std::move(*snap);
  if (!read_u64_array(v.find("oracle"), &out->oracle_state)) {
    return fail("bad oracle state");
  }
  std::vector<std::uint64_t> counts;
  if (!read_u64_array(v.find("counts"), &counts)) return fail("bad counts");
  out->counts.clear();
  out->counts.reserve(counts.size());
  for (const std::uint64_t c : counts) {
    if (c > UINT32_MAX) return fail("bad counts");
    out->counts.push_back(static_cast<std::uint32_t>(c));
  }
  if (!read_u64_array(v.find("watch_marks"), &out->watch_marks)) {
    return fail("bad watch_marks");
  }
  const io::JsonValue* metrics = v.find("metrics");
  std::string metrics_error;
  if (metrics == nullptr ||
      !read_registry(*metrics, &out->metrics, &metrics_error)) {
    return fail(metrics_error.empty() ? "missing metrics" : metrics_error);
  }
  return true;
}

// --- engine dispatch -------------------------------------------------------

/// The engine's live configuration, engine-shape agnostic.
template <typename Sim>
Counts engine_counts(const Sim& sim) {
  if constexpr (requires { sim.counts(); }) {
    return sim.counts();
  } else {
    return sim.population().counts();
  }
}

/// Installs watch-mark recording on engines that support it (set_watch on
/// the count-shaped engines, an observer on the agent engine).
template <typename Sim>
void attach_watch(Sim& sim, StateId watched,
                  std::vector<std::uint64_t>* marks) {
  if constexpr (requires { sim.set_watch(watched, marks); }) {
    sim.set_watch(watched, marks);
  } else if constexpr (requires {
                         sim.set_observer(
                             std::function<void(const pp::SimEvent&)>{});
                       }) {
    sim.set_observer([marks, watched](const pp::SimEvent& event) {
      const int delta = (event.p_next == watched ? 1 : 0) +
                        (event.q_next == watched ? 1 : 0) -
                        (event.p == watched ? 1 : 0) -
                        (event.q == watched ? 1 : 0);
      for (int i = 0; i < delta; ++i) marks->push_back(event.interaction);
    });
  }
}

/// Constructs the resolved engine for one attempt and invokes `fn` on it.
/// Mirrors the Monte-Carlo runner's per-trial construction exactly
/// (including the topology sub-stream and the adversarial fairness
/// route), so a campaign trial's trajectory is the chunk-driven version
/// of the corresponding Monte-Carlo trial.
template <typename Fn>
auto with_engine(const pp::Protocol* protocol, const pp::TransitionTable& table,
                 const Counts& initial, const MonteCarloOptions& mc,
                 std::uint64_t n, Engine engine, std::uint64_t seed, Fn&& fn) {
  if (mc.fairness.needs_adversarial_engine()) {
    // Only the agent-level scheduler can realize a non-uniform fairness
    // policy; it needs the protocol's group map for its adversary probes.
    PPK_ASSERT(protocol != nullptr);
    std::optional<pp::InteractionGraph> graph;
    if (mc.graph) {
      graph.emplace(mc.graph(derive_stream_seed(seed, pp::kGraphTopologyStream)));
      PPK_EXPECTS(graph->num_agents() == n);
    }
    pp::AdversarialSimulator sim(*protocol, table, pp::Population(initial),
                                 mc.fairness, seed, graph ? &*graph : nullptr);
    return fn(sim);
  }
  switch (engine) {
    case Engine::kGraph:
    case Engine::kGraphJump: {
      pp::InteractionGraph graph =
          mc.graph(derive_stream_seed(seed, pp::kGraphTopologyStream));
      PPK_EXPECTS(graph.num_agents() == n);
      if (engine == Engine::kGraph) {
        pp::GraphSimulator sim(table, std::move(graph), pp::Population(initial),
                               seed);
        return fn(sim);
      }
      pp::GraphJumpSimulator sim(table, std::move(graph),
                                 pp::Population(initial), seed);
      return fn(sim);
    }
    case Engine::kCountVector: {
      pp::CountSimulator sim(table, initial, seed);
      return fn(sim);
    }
    case Engine::kJump: {
      pp::JumpSimulator sim(table, initial, seed);
      return fn(sim);
    }
    case Engine::kBatch: {
      pp::BatchSimulator sim(table, initial, seed);
      return fn(sim);
    }
    case Engine::kBatchSharded: {
      pp::BatchShardedSimulator sim(table, initial, seed, mc.engine_threads);
      return fn(sim);
    }
    case Engine::kAgentArray:
    case Engine::kAuto:
      break;
  }
  pp::AgentSimulator sim(table, pp::Population(initial), seed);
  return fn(sim);
}

// --- the runner ------------------------------------------------------------

enum class AttemptEnd { kStabilized, kStalled, kBudget, kTimedOut, kCensored };

struct Shared {
  std::mutex mutex;
  const CampaignOptions* options = nullptr;
  std::string fingerprint;
  std::vector<CampaignTrial> trials;
  std::vector<char> done;
  std::map<std::uint32_t, InFlightTrial> inflight;
  obs::MetricsRegistry merged;
  std::uint32_t events = 0;
  bool halted = false;
  Stopwatch clock;
};

/// True once the campaign should wind down (stop flag or global
/// deadline); latches so every worker agrees.
bool halt_locked(Shared& s) {
  if (s.halted) return true;
  const CampaignOptions& o = *s.options;
  if ((o.stop != nullptr && o.stop->load(std::memory_order_relaxed)) ||
      (o.campaign_deadline_seconds &&
       s.clock.seconds() >= *o.campaign_deadline_seconds)) {
    s.halted = true;
  }
  return s.halted;
}

void write_checkpoint_locked(Shared& s) {
  CampaignCheckpoint ckpt;
  ckpt.fingerprint = s.fingerprint;
  for (std::uint32_t t = 0; t < s.done.size(); ++t) {
    if (s.done[t] != 0) ckpt.completed.push_back({t, s.trials[t]});
  }
  for (const auto& [trial, entry] : s.inflight) ckpt.in_flight.push_back(entry);
  ckpt.metrics = s.merged;
  const Stopwatch watch;
  std::string error;
  if (!io::write_file_atomic(s.options->checkpoint_path,
                             serialize_campaign_checkpoint(ckpt), &error)) {
    std::fprintf(stderr, "ppk: campaign checkpoint write failed: %s\n",
                 error.c_str());
    if (s.options->runtime_metrics != nullptr) {
      s.options->runtime_metrics->counter("campaign.checkpoint.errors").inc();
    }
    return;
  }
  if (s.options->runtime_metrics != nullptr) {
    s.options->runtime_metrics->counter("campaign.checkpoints").inc();
    s.options->runtime_metrics->histogram("campaign.checkpoint.write_us")
        .record(static_cast<std::uint64_t>(watch.seconds() * 1e6));
  }
}

/// Counts one progress event and writes a checkpoint when the cadence is
/// reached.
void maybe_checkpoint_locked(Shared& s) {
  if (s.options->checkpoint_path.empty()) return;
  if (++s.events < s.options->checkpoint_every_chunks) return;
  s.events = 0;
  write_checkpoint_locked(s);
}

struct TrialCtx {
  Shared* shared = nullptr;
  std::uint32_t trial = 0;
  CampaignTrial* out = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Chunk-boundary bookkeeping: captures the engine + oracle into the
/// shared in-flight table (the state a checkpoint would persist), counts
/// the progress event, and reports whether the campaign is halting.
template <typename Sim>
bool at_boundary(TrialCtx& ctx, Sim& sim, pp::StabilityOracle& oracle,
                 std::uint32_t retry, std::uint64_t consumed) {
  Shared& s = *ctx.shared;
  InFlightTrial entry;
  entry.trial = ctx.trial;
  entry.retry = retry;
  entry.consumed = consumed;
  entry.interactions = ctx.out->result.interactions;
  entry.effective = ctx.out->result.effective;
  entry.snapshot = sim.snapshot();
  entry.oracle_state = oracle.save_state();
  entry.counts = engine_counts(sim);
  entry.watch_marks = ctx.out->result.watch_marks;
  entry.metrics = *ctx.metrics;
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.inflight[ctx.trial] = std::move(entry);
  maybe_checkpoint_locked(s);
  return halt_locked(s);
}

/// Drives one attempt in fixed chunks, optionally continuing from a
/// checkpointed capture.  The grant sequence depends only on (budget,
/// chunk, consumed-at-restore), so a restored attempt and the
/// uninterrupted attempt issue identical grants -- the precondition of
/// the snapshot bit-identity contract.
template <typename Sim>
AttemptEnd run_attempt(Sim& sim, pp::StabilityOracle& oracle, TrialCtx& ctx,
                       std::uint32_t retry, std::uint64_t budget,
                       const InFlightTrial* from) {
  const CampaignOptions& o = *ctx.shared->options;
  std::uint64_t consumed = 0;
  bool first = true;
  if (from != nullptr) {
    sim.restore(from->snapshot);
    oracle.reset(from->counts);
    oracle.restore_state(from->oracle_state);
    consumed = from->consumed;
    first = false;
  }
  const Stopwatch attempt_clock;  // deadline runs from (re)start
  while (true) {
    const std::uint64_t grant =
        std::min(o.chunk_interactions, budget - consumed);
    const pp::SimResult r =
        first ? sim.run(oracle, grant) : sim.resume(oracle, grant);
    first = false;
    consumed += r.interactions;
    ctx.out->result.interactions += r.interactions;
    ctx.out->result.effective += r.effective;
    if (r.stabilized) return AttemptEnd::kStabilized;
    if (r.interactions < grant) return AttemptEnd::kStalled;
    if (consumed >= budget) return AttemptEnd::kBudget;
    if (at_boundary(ctx, sim, oracle, retry, consumed)) {
      return AttemptEnd::kCensored;
    }
    if (o.trial_deadline_seconds &&
        attempt_clock.seconds() >= *o.trial_deadline_seconds) {
      return AttemptEnd::kTimedOut;
    }
  }
}

/// Per-trial outcome instruments, mirroring the Monte-Carlo runner's names
/// plus the supervision verdicts.
void stamp_outcome(obs::MetricsRegistry& metrics, const CampaignTrial& t) {
  metrics.counter("trials").inc();
  if (t.result.stabilized) metrics.counter("trials.stabilized").inc();
  if (t.result.timed_out) metrics.counter("trials.timed_out").inc();
  if (t.result.stalled) metrics.counter("trials.stalled").inc();
  if (t.failed) metrics.counter("trials.failed").inc();
  if (t.retries > 0) {
    metrics.counter("trials.retried").inc();
    metrics.counter("trial.retries").inc(t.retries);
  }
  metrics.histogram("trial.interactions").record(t.result.interactions);
  metrics.histogram("trial.effective").record(t.result.effective);
}

void run_trial(Shared& s, const pp::Protocol* protocol,
               const pp::TransitionTable& table, const Counts& initial,
               const pp::OracleFactory& make_oracle, Engine engine,
               std::uint64_t n, std::uint32_t idx) {
  const CampaignOptions& o = *s.options;
  std::optional<InFlightTrial> start;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (halt_locked(s)) {
      s.trials[idx].censored = true;
      return;
    }
    const auto it = s.inflight.find(idx);
    if (it != s.inflight.end()) start = it->second;
  }

  CampaignTrial out;
  obs::MetricsRegistry trial_metrics;
  std::uint32_t attempt = 0;
  if (start) {
    attempt = start->retry;
    out.retries = start->retry;
    out.result.interactions = start->interactions;
    out.result.effective = start->effective;
    out.result.watch_marks = start->watch_marks;
    trial_metrics = start->metrics;
  }

  const std::uint64_t trial_seed = derive_stream_seed(o.mc.master_seed, idx);
  TrialCtx ctx{&s, idx, &out, &trial_metrics};
  while (true) {
    const std::uint64_t seed =
        attempt == 0 ? trial_seed
                     : derive_stream_seed(trial_seed, kRetryStream + attempt);
    const std::uint64_t budget =
        attempt_budget(o.mc.max_interactions, o.retry_backoff, attempt);
    auto oracle = make_oracle();
    PPK_ASSERT(oracle != nullptr);
    std::optional<obs::ObsSink> sink;
    if (o.collect_metrics) sink.emplace(trial_metrics);
    const AttemptEnd end = with_engine(
        protocol, table, initial, o.mc, n, engine, seed, [&](auto& sim) {
          if (sink) sim.set_obs_sink(&*sink);
          if (o.mc.watch_state) {
            attach_watch(sim, *o.mc.watch_state, &out.result.watch_marks);
          }
          return run_attempt(sim, *oracle, ctx, attempt, budget,
                             start ? &*start : nullptr);
        });
    start.reset();
    if (end == AttemptEnd::kStabilized) {
      out.result.stabilized = true;
      break;
    }
    if (end == AttemptEnd::kTimedOut) {
      out.result.timed_out = true;
      break;
    }
    if (end == AttemptEnd::kCensored) {
      out.censored = true;
      break;
    }
    // Stalled or budget-exhausted: retry with a backed-off budget, or give
    // up with a failed verdict.
    if (attempt >= o.max_retries) {
      out.failed = true;
      out.result.stalled = end == AttemptEnd::kStalled;
      break;
    }
    ++attempt;
    ++out.retries;
    out.result.watch_marks.clear();  // marks describe the final attempt
    if (o.runtime_metrics != nullptr) {
      const std::lock_guard<std::mutex> lock(s.mutex);
      o.runtime_metrics->counter("campaign.retries").inc();
    }
  }

  const std::lock_guard<std::mutex> lock(s.mutex);
  s.trials[idx] = out;
  if (o.on_trial) o.on_trial(idx, out);
  if (out.censored) return;  // the in-flight capture stays resumable
  s.done[idx] = 1;
  s.inflight.erase(idx);
  if (o.collect_metrics) {
    stamp_outcome(trial_metrics, out);
    s.merged.merge(trial_metrics);
  }
  maybe_checkpoint_locked(s);
}

}  // namespace

std::string campaign_fingerprint(const pp::Counts& initial,
                                 const CampaignOptions& options) {
  std::ostringstream out;
  out << kCampaignSchema << " trials=" << options.mc.trials
      << " seed=" << options.mc.master_seed
      << " budget=" << options.mc.max_interactions
      << " engine=" << static_cast<int>(options.mc.engine) << " topology="
      << (options.topology_tag.empty()
              ? (options.mc.graph ? "unnamed" : "complete")
              : options.topology_tag)
      << " watch="
      << (options.mc.watch_state ? static_cast<int>(*options.mc.watch_state)
                                 : -1)
      << " chunk=" << options.chunk_interactions
      << " retries=" << options.max_retries
      << " metrics=" << (options.collect_metrics ? 1 : 0);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", options.retry_backoff);
  out << " backoff=" << buffer;
  // The fairness spec shapes every trajectory the adversarial engine
  // draws; a checkpoint written under one policy must refuse to resume
  // under another (epsilon included: epsilon-fair trajectories differ
  // per epsilon).
  std::snprintf(buffer, sizeof buffer, "%.17g", options.mc.fairness.epsilon);
  out << " fairness=" << pp::to_string(options.mc.fairness.policy) << ":eps="
      << buffer << " counts=";
  for (std::size_t i = 0; i < initial.size(); ++i) {
    out << (i == 0 ? "" : ",") << initial[i];
  }
  return out.str();
}

std::string serialize_campaign_checkpoint(const CampaignCheckpoint& checkpoint) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object();
    json.member("schema", kCampaignSchema);
    json.member("fingerprint", checkpoint.fingerprint);
    json.key("completed");
    json.begin_array();
    for (const CompletedTrial& t : checkpoint.completed) {
      write_completed(json, t);
    }
    json.end_array();
    json.key("in_flight");
    json.begin_array();
    for (const InFlightTrial& t : checkpoint.in_flight) {
      write_inflight(json, t);
    }
    json.end_array();
    json.key("metrics");
    write_registry(json, checkpoint.metrics);
    json.end_object();
  }
  return out.str();
}

std::optional<CampaignCheckpoint> parse_campaign_checkpoint(
    std::string_view text, std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = "checkpoint: " + reason;
    return std::nullopt;
  };
  std::string json_error;
  const auto root = io::parse_json(text, &json_error);
  if (!root) return fail(json_error);
  if (!root->is_object()) return fail("not an object");
  const io::JsonValue* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string()) return fail("missing schema");
  if (schema->as_string() != kCampaignSchema) return fail("unknown schema");
  const io::JsonValue* fingerprint = root->find("fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string()) {
    return fail("missing fingerprint");
  }
  const io::JsonValue* completed = root->find("completed");
  const io::JsonValue* in_flight = root->find("in_flight");
  const io::JsonValue* metrics = root->find("metrics");
  if (completed == nullptr || !completed->is_array() || in_flight == nullptr ||
      !in_flight->is_array() || metrics == nullptr) {
    return fail("missing section");
  }
  CampaignCheckpoint result;
  result.fingerprint = fingerprint->as_string();
  std::string section_error;
  for (const io::JsonValue& item : completed->items) {
    CompletedTrial t;
    if (!read_completed(item, &t, &section_error)) return fail(section_error);
    result.completed.push_back(std::move(t));
  }
  for (const io::JsonValue& item : in_flight->items) {
    InFlightTrial t;
    if (!read_inflight(item, &t, &section_error)) return fail(section_error);
    result.in_flight.push_back(std::move(t));
  }
  if (!read_registry(*metrics, &result.metrics, &section_error)) {
    return fail(section_error);
  }
  return result;
}

namespace {

CampaignResult run_campaign_impl(const pp::Protocol* protocol,
                                 const pp::TransitionTable& table,
                                 const pp::Counts& initial,
                                 const pp::OracleFactory& make_oracle,
                                 const CampaignOptions& options) {
  PPK_EXPECTS(options.mc.trials > 0);
  PPK_EXPECTS(options.mc.metrics == nullptr);
  PPK_EXPECTS(!options.mc.wall_clock_limit_seconds);
  PPK_EXPECTS(options.chunk_interactions >= 1);
  PPK_EXPECTS(options.checkpoint_every_chunks >= 1);
  PPK_EXPECTS(options.max_retries == 0 || options.retry_backoff >= 1.0);

  std::uint64_t n = 0;
  for (const std::uint32_t c : initial) n += c;
  Engine engine = Engine::kAgentArray;
  if (options.mc.fairness.needs_adversarial_engine()) {
    // Adversarial fairness bypasses engine resolution entirely: only the
    // agent-level scheduler realizes the policy, and it needs the
    // protocol's group map (precondition documented on the counts-only
    // run_campaign overload).
    PPK_EXPECTS(protocol != nullptr);
    PPK_EXPECTS(!options.mc.watch_state);
    PPK_EXPECTS(options.mc.engine == Engine::kAuto ||
                options.mc.engine == Engine::kAgentArray);
  } else {
    engine = pp::resolve_engine(options.mc.engine, n,
                                options.mc.watch_state.has_value(),
                                static_cast<bool>(options.mc.graph));
    PPK_EXPECTS(!(engine == Engine::kBatch && options.mc.watch_state));
    const bool graph_engine =
        engine == Engine::kGraph || engine == Engine::kGraphJump;
    PPK_EXPECTS(graph_engine == static_cast<bool>(options.mc.graph));
    PPK_EXPECTS(engine != Engine::kGraph || !options.mc.watch_state);
  }

  CampaignResult result;
  Shared s;
  s.options = &options;
  s.fingerprint = campaign_fingerprint(initial, options);
  s.trials.resize(options.mc.trials);
  s.done.assign(options.mc.trials, 0);

  if (!options.checkpoint_path.empty()) {
    std::ifstream file(options.checkpoint_path);
    if (file) {
      std::ostringstream buffer;
      buffer << file.rdbuf();
      std::string error;
      const auto ckpt = parse_campaign_checkpoint(buffer.str(), &error);
      if (!ckpt) {
        result.error = options.checkpoint_path + ": " + error;
        return result;
      }
      if (ckpt->fingerprint != s.fingerprint) {
        result.error = options.checkpoint_path +
                       ": checkpoint was written by a different campaign "
                       "configuration";
        return result;
      }
      for (const CompletedTrial& t : ckpt->completed) {
        if (t.trial >= options.mc.trials) {
          result.error = options.checkpoint_path + ": trial index out of range";
          return result;
        }
        s.trials[t.trial] = t.data;
        s.done[t.trial] = 1;
      }
      for (const InFlightTrial& t : ckpt->in_flight) {
        if (t.trial >= options.mc.trials || s.done[t.trial] != 0) {
          result.error = options.checkpoint_path + ": bad in-flight trial";
          return result;
        }
        s.inflight[t.trial] = t;
      }
      s.merged = ckpt->metrics;
      result.resumed = true;
    }
  }

  const auto body = [&](std::size_t idx) {
    if (s.done[idx] != 0) return;  // set only before the pool starts
    run_trial(s, protocol, table, initial, make_oracle, engine, n,
              static_cast<std::uint32_t>(idx));
  };
  if (options.mc.threads == 1 || options.mc.trials == 1) {
    for (std::size_t t = 0; t < options.mc.trials; ++t) body(t);
  } else {
    ThreadPool pool(options.mc.threads);
    pool.parallel_for_index(options.mc.trials, body);
  }

  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!options.checkpoint_path.empty()) write_checkpoint_locked(s);
  result.trials = std::move(s.trials);
  result.metrics = std::move(s.merged);
  result.complete = true;
  for (const char done : s.done) result.complete = result.complete && done != 0;
  if (options.runtime_metrics != nullptr) {
    options.runtime_metrics->gauge("campaign.trials.censored")
        .set(static_cast<std::int64_t>(result.censored_count()));
    options.runtime_metrics->gauge("campaign.trials.failed")
        .set(static_cast<std::int64_t>(result.failed_count()));
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(const pp::TransitionTable& table,
                            const pp::Counts& initial,
                            const pp::OracleFactory& make_oracle,
                            const CampaignOptions& options) {
  PPK_EXPECTS(!options.mc.fairness.needs_adversarial_engine());
  return run_campaign_impl(nullptr, table, initial, make_oracle, options);
}

CampaignResult run_campaign(const pp::Protocol& protocol,
                            const pp::TransitionTable& table,
                            const pp::Counts& initial,
                            const pp::OracleFactory& make_oracle,
                            const CampaignOptions& options) {
  return run_campaign_impl(&protocol, table, initial, make_oracle, options);
}

CampaignResult run_campaign(const pp::Protocol& protocol,
                            const pp::TransitionTable& table, std::uint32_t n,
                            const pp::OracleFactory& make_oracle,
                            const CampaignOptions& options) {
  Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  return run_campaign_impl(&protocol, table, initial, make_oracle, options);
}

}  // namespace ppk::core
