// Contract-checking macros in the spirit of the C++ Core Guidelines' GSL
// Expects/Ensures.  Violations are programming errors, not recoverable
// conditions, so they abort with a source location instead of throwing.
//
// PPK_EXPECTS(cond)  -- precondition on entry to a function
// PPK_ENSURES(cond)  -- postcondition before returning
// PPK_ASSERT(cond)   -- internal invariant
//
// All three stay enabled in release builds: the checks in this library are
// O(1) and guard against silent state-machine corruption, which would
// invalidate every measurement downstream.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace ppk::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "ppk: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace ppk::detail

#define PPK_CONTRACT_CHECK(kind, cond)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ppk::detail::contract_failure(kind, #cond, __FILE__, __LINE__);    \
    }                                                                      \
  } while (false)

#define PPK_EXPECTS(cond) PPK_CONTRACT_CHECK("precondition", cond)
#define PPK_ENSURES(cond) PPK_CONTRACT_CHECK("postcondition", cond)
#define PPK_ASSERT(cond) PPK_CONTRACT_CHECK("invariant", cond)
