// Blocked mode-centered hypergeometric sampler -- the SIMD-friendly
// counterpart of Xoshiro256::hypergeometric, built for the sharded batch
// engine's hot path.
//
// The reference sampler (util/rng.hpp) walks the pmf recurrence outward
// from the mode one term at a time; each step carries a floating-point
// division on the loop's critical path, and at n = 10^8 the walk runs
// O(stddev) ~ tens to hundreds of steps per draw.  This variant evaluates
// the walk four steps at a time: the per-step ratio numerators and
// denominators (each a product of two linear factors) are assembled
// scalar-side, then simd::hyper_block4 turns them into four pmf terms with
// one packed divide -- the division leaves the dependency chain, and the
// scalar fallback performs the identical operation tree so results are
// bit-identical under either dispatch (the contract in util/simd.hpp).
//
// Law: identical to the reference sampler up to floating-point rounding of
// the pmf partial sums (~1e-13 relative, the repo-wide sampler tolerance;
// the two walk the same pmf in a different accumulation order, so a given
// uniform can map to a different value only within that rounding sliver).
// The engines that must stay distribution-identical to their pairwise
// references are pinned by the conformance KS net, not bit-wise.
//
// RNG discipline: exactly one uniform is consumed per non-trivial call and
// none for the trivial cases (m == 0, marked == 0, marked == total,
// m == total) -- the same consumption profile as the reference, which the
// sharded engine's empty-shard determinism argument relies on.

#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace ppk {

/// Hypergeometric draw (marked items in a uniform without-replacement
/// sample of `m` from `total` items of which `marked` are marked) via the
/// blocked mode-centered inversion.  `log_fact(x)` must return log(x!) for
/// integral-valued doubles (util/log_fact.hpp's LogFact is the intended
/// argument).
template <typename LogFactFn>
std::uint64_t hypergeometric_blocked(Xoshiro256& rng, std::uint64_t total,
                                     std::uint64_t marked, std::uint64_t m,
                                     const LogFactFn& log_fact) noexcept {
  PPK_EXPECTS(marked <= total && m <= total);
  if (m == 0 || marked == 0) return 0;
  if (marked == total) return m;
  if (m == total) return marked;
  // Symmetries: sample the complement when it is smaller (mirrors the
  // reference reductions; at most two levels deep).
  if (m > total / 2) {
    return marked -
           hypergeometric_blocked(rng, total, marked, total - m, log_fact);
  }
  if (marked > total / 2) {
    return m -
           hypergeometric_blocked(rng, total, total - marked, m, log_fact);
  }
  const double nd = static_cast<double>(total);
  const double kd = static_cast<double>(marked);
  const double md = static_cast<double>(m);
  const std::uint64_t x_min = m + marked > total ? m + marked - total : 0;
  const std::uint64_t x_max = marked < m ? marked : m;
  auto mode = static_cast<std::uint64_t>((md + 1.0) * (kd + 1.0) /
                                         (nd + 2.0));
  if (mode < x_min) mode = x_min;
  if (mode > x_max) mode = x_max;
  const auto log_choose = [&log_fact](double a, double b) {
    return log_fact(a) - log_fact(b) - log_fact(a - b);
  };
  const double log_pmf_mode =
      log_choose(kd, static_cast<double>(mode)) +
      log_choose(nd - kd, md - static_cast<double>(mode)) -
      log_choose(nd, md);
  const double u = rng.uniform01();
  const double pmf_mode = std::exp(log_pmf_mode);
  double cdf = pmf_mode;
  if (u < cdf) return mode;

  // Outward walk, four pmf terms per side per round.  Down-step x -> x-1
  // multiplies by x*(N-K-M+x) / ((K-x+1)(M-x+1)); up-step x -> x+1 by
  // (K-x)(M-x) / ((x+1)(N-K-M+x+1)).  Unused block lanes are padded with
  // ratio 1 and never consumed.
  const double rest = nd - kd - md;
  double num[4];
  double den[4];
  double out[4];
  std::uint64_t lo = mode;
  std::uint64_t hi = mode;
  double lo_pmf = pmf_mode;
  double hi_pmf = pmf_mode;
  while (lo > x_min || hi < x_max) {
    if (lo > x_min) {
      const std::uint64_t steps = lo - x_min < 4 ? lo - x_min : 4;
      for (std::uint64_t j = 0; j < 4; ++j) {
        if (j < steps) {
          const double x = static_cast<double>(lo - j);
          num[j] = x * (rest + x);
          den[j] = (kd - x + 1.0) * (md - x + 1.0);
        } else {
          num[j] = 1.0;
          den[j] = 1.0;
        }
      }
      simd::hyper_block4(num, den, lo_pmf, out);
      for (std::uint64_t j = 0; j < steps; ++j) {
        cdf += out[j];
        --lo;
        if (u < cdf) return lo;
      }
      lo_pmf = out[steps - 1];
    }
    if (hi < x_max) {
      const std::uint64_t steps = x_max - hi < 4 ? x_max - hi : 4;
      for (std::uint64_t j = 0; j < 4; ++j) {
        if (j < steps) {
          const double x = static_cast<double>(hi + j);
          num[j] = (kd - x) * (md - x);
          den[j] = (x + 1.0) * (rest + x + 1.0);
        } else {
          num[j] = 1.0;
          den[j] = 1.0;
        }
      }
      simd::hyper_block4(num, den, hi_pmf, out);
      for (std::uint64_t j = 0; j < steps; ++j) {
        cdf += out[j];
        ++hi;
        if (u < cdf) return hi;
      }
      hi_pmf = out[steps - 1];
    }
  }
  return mode;  // cdf rounding sliver; return the mode (as the reference)
}

}  // namespace ppk
