// Shared log-factorial table + deterministic large-argument tail.
//
// Every hypergeometric draw in the aggregated engines evaluates log(x!)
// several times; the batch engine used to build a private lgamma table per
// engine instance, which (a) re-touches ~8 MB of cold memory on every
// construction -- measurable when Monte-Carlo pools or conformance nets
// construct thousands of short-lived engines -- and (b) silently degrades
// to live std::lgamma calls for populations past the table bound, which is
// exactly where the n = 10^8 regimes live.  This header fixes both:
//
//  - LogFactTable::shared(n) hands out one process-wide immutable table of
//    std::lgamma(i + 1.0) values (bit-identical to what every engine tabled
//    privately before), grown monotonically and shared by reference count,
//    so constructing the thousandth engine costs two atomic loads.
//  - log_fact_tail(x) evaluates log(x!) for arguments beyond the table by a
//    fixed-degree Stirling series: pure arithmetic on doubles, deterministic
//    across runs, threads and SIMD dispatch (no libm lgamma, whose exact
//    rounding is libc-specific), with relative error < 1e-14 for
//    x >= kLogFactTableSize - 1 -- far below the ~1e-13 rounding the exact
//    samplers already tolerate (see util/rng.hpp).
//
// The split point is kLogFactTableSize: engines call LogFact::operator(),
// which reads the table below it and the Stirling tail at or above it.

#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace ppk {

/// Entries in the shared table: log(i!) for i < kLogFactTableSize.  8 MB
/// resident once per process; chosen to match the batch engine's historical
/// per-instance bound (1 << 20) so existing populations see bit-identical
/// values through the shared table.
inline constexpr std::uint64_t kLogFactTableSize = (1ULL << 20) + 1;

/// log(x!) for an integral-valued double x >= kLogFactTableSize - 1, by the
/// Stirling series for lgamma(x + 1).  Deterministic: a fixed sequence of
/// IEEE double operations (one std::log call plus polynomial arithmetic),
/// identical on every thread and under every SIMD dispatch decision.
[[nodiscard]] inline double log_fact_tail(double x) {
  // lgamma(z) = (z - 1/2) log z - z + log(2 pi)/2 + 1/(12 z) - 1/(360 z^3)
  //             + 1/(1260 z^5) - ...   with z = x + 1.
  // For z > 2^20 the 1/(360 z^3) term is already below 1e-18 absolute;
  // keeping three correction terms leaves the truncation error far under
  // the double rounding floor of the leading terms.
  constexpr double kHalfLog2Pi = 0.91893853320467274178;  // log(2 pi) / 2
  const double z = x + 1.0;
  const double inv = 1.0 / z;
  const double inv2 = inv * inv;
  const double series =
      inv * (1.0 / 12.0 + inv2 * (-1.0 / 360.0 + inv2 * (1.0 / 1260.0)));
  return (z - 0.5) * std::log(z) - z + kHalfLog2Pi + series;
}

/// Process-wide shared table of log(i!) values.  shared(limit) returns an
/// immutable vector covering at least [0, min(limit, kLogFactTableSize - 1)];
/// the first caller pays the lgamma fill, later callers share it.
class LogFactTable {
 public:
  using Table = std::vector<double>;

  /// A shared immutable table with entries log(i!) for
  /// i <= min(limit, kLogFactTableSize - 1).  Thread-safe; the table only
  /// ever grows, and a returned pointer keeps its snapshot alive
  /// independently of later growth.
  [[nodiscard]] static std::shared_ptr<const Table> shared(
      std::uint64_t limit);

 private:
  LogFactTable() = default;
};

/// The lookup object engines hold: table below kLogFactTableSize, Stirling
/// tail above.  Copyable and cheap (one shared_ptr); call sites pass it to
/// Xoshiro256::hypergeometric as the LogFact callable.
class LogFact {
 public:
  /// Covers arguments up to `max_arg` exactly-as-before: values below the
  /// table bound come from the shared lgamma table, larger ones from the
  /// deterministic Stirling tail.
  explicit LogFact(std::uint64_t max_arg)
      : table_(LogFactTable::shared(max_arg)) {}

  [[nodiscard]] double operator()(double x) const {
    const auto i = static_cast<std::size_t>(x);
    return i < table_->size() ? (*table_)[i] : log_fact_tail(x);
  }

  /// The shared table backing this lookup (tests assert reuse across
  /// instances by pointer identity).
  [[nodiscard]] const std::shared_ptr<const LogFactTable::Table>& table()
      const noexcept {
    return table_;
  }

 private:
  std::shared_ptr<const LogFactTable::Table> table_;
};

}  // namespace ppk
