// Deterministic, splittable pseudo-random number generation.
//
// Simulation results must be reproducible from a single master seed even when
// trials run on different threads, so we use SplitMix64 to derive independent
// stream seeds and xoshiro256** as the per-stream generator (Blackman &
// Vigna).  Both are tiny, allocation-free and an order of magnitude faster
// than std::mt19937_64, which matters when a single trial draws 10^8 pairs.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace ppk {

/// SplitMix64: used to expand a 64-bit seed into independent sub-seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.  Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as the
  /// reference implementation recommends.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw from [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased, usually a single multiplication).
  std::uint64_t below(std::uint64_t bound) noexcept {
    PPK_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform draw from [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the seed of the `stream`-th independent generator from a master
/// seed.  Distinct streams come from distinct SplitMix64 outputs, so trials
/// scheduled on different threads reproduce bit-for-bit regardless of the
/// execution order.
inline std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                        std::uint64_t stream) noexcept {
  SplitMix64 mix(master_seed ^ (0x5851f42d4c957f2dULL * (stream + 1)));
  mix.next();
  return mix.next();
}

}  // namespace ppk
