// Deterministic, splittable pseudo-random number generation.
//
// Simulation results must be reproducible from a single master seed even when
// trials run on different threads, so we use SplitMix64 to derive independent
// stream seeds and xoshiro256** as the per-stream generator (Blackman &
// Vigna).  Both are tiny, allocation-free and an order of magnitude faster
// than std::mt19937_64, which matters when a single trial draws 10^8 pairs.
//
// The generator also carries the exact discrete samplers the aggregated
// engines are built on -- geometric (null-run skipping), binomial
// (multinomial batch decomposition) and hypergeometric (the
// without-replacement form used by the collision-free batch engine).  All
// three are inversion-based and exact; see each method's comment.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace ppk {

/// SplitMix64: used to expand a 64-bit seed into independent sub-seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.  Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as the
  /// reference implementation recommends.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw from [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased, usually a single multiplication).
  std::uint64_t below(std::uint64_t bound) noexcept {
    PPK_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform draw from [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Geometric draw: the number of failures before the first success in
  /// Bernoulli(p) trials (support {0, 1, 2, ...}).  Inverse transform on a
  /// single uniform; the only inexactness is ~1 ulp of floating-point
  /// rounding in log space, negligible against Monte-Carlo noise (this is
  /// the same tolerance the jump engine's null-run skipping has always
  /// accepted).  Requires p in (0, 1]; values >= 1 return 0.
  std::uint64_t geometric(double p) noexcept {
    PPK_EXPECTS(p > 0.0);
    if (p >= 1.0) return 0;
    const double u = 1.0 - uniform01();  // in (0, 1]
    const double g = std::floor(std::log(u) / std::log1p(-p));
    if (g <= 0.0) return 0;
    if (g >= 0x1.0p63) return UINT64_MAX;  // astronomically rare; saturate
    return static_cast<std::uint64_t>(g);
  }

  /// Binomial draw: successes in n Bernoulli(p) trials.
  ///
  /// Exact for every parameter range (no normal approximation):
  ///  - small mean: bottom-up inversion through the CDF, O(mean);
  ///  - large mean: inversion through the outcomes ordered by distance from
  ///    the mode, walking the pmf recurrence outward, O(stddev) expected.
  /// The mode-centered walk is the exactness-preserving alternative to
  /// BTRD-style rejection: same O(sqrt(n p (1-p))) expected cost for large
  /// mean, a fraction of the code, and no acceptance-region subtleties.
  /// Rounding error is ~1e-13 relative (lgamma + a product of pmf ratios),
  /// far below Monte-Carlo resolution.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept {
    PPK_EXPECTS(p >= 0.0 && p <= 1.0);
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    if (p > 0.5) return n - binomial(n, 1.0 - p);  // keep the mean small
    const double nd = static_cast<double>(n);
    const double mean = nd * p;
    const double odds = p / (1.0 - p);
    if (mean <= 32.0) {
      // Bottom-up inversion: pmf(0) = (1-p)^n, then the ratio recurrence
      // pmf(k+1)/pmf(k) = (n-k)/(k+1) * odds.
      const double u = uniform01();
      double pmf = std::exp(nd * std::log1p(-p));
      double cdf = pmf;
      std::uint64_t k = 0;
      while (cdf <= u && k < n) {
        pmf *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) *
               odds;
        cdf += pmf;
        ++k;
      }
      return k;
    }
    // Mode-centered inversion: fix the outcome ordering mode, mode-1,
    // mode+1, mode-2, ... and walk it accumulating pmf mass until the
    // uniform is covered.  Any fixed ordering yields an exact sampler; this
    // one terminates in O(stddev) steps because the mass concentrates
    // around the mode.
    const auto mode =
        static_cast<std::uint64_t>((nd + 1.0) * p);  // floor((n+1)p) <= n
    const double log_pmf_mode =
        std::lgamma(nd + 1.0) - std::lgamma(static_cast<double>(mode) + 1.0) -
        std::lgamma(static_cast<double>(n - mode) + 1.0) +
        static_cast<double>(mode) * std::log(p) +
        static_cast<double>(n - mode) * std::log1p(-p);
    const double u = uniform01();
    double lo_pmf = std::exp(log_pmf_mode);  // pmf at next lower candidate
    double hi_pmf = lo_pmf;                  // pmf at next higher candidate
    double cdf = lo_pmf;
    if (u < cdf) return mode;
    std::uint64_t lo = mode;  // next lower candidate is lo - 1
    std::uint64_t hi = mode;  // next higher candidate is hi + 1
    while (lo > 0 || hi < n) {
      if (lo > 0) {
        lo_pmf *= (static_cast<double>(lo) /
                   static_cast<double>(n - lo + 1)) /
                  odds;
        cdf += lo_pmf;
        --lo;
        if (u < cdf) return lo;
      }
      if (hi < n) {
        hi_pmf *= (static_cast<double>(n - hi) /
                   static_cast<double>(hi + 1)) *
                  odds;
        cdf += hi_pmf;
        ++hi;
        if (u < cdf) return hi;
      }
    }
    return mode;  // cdf rounding left a ~1e-13 sliver; return the mode
  }

  /// Hypergeometric draw: marked items in a uniform without-replacement
  /// sample of `m` from a population of `total` containing `marked` marked
  /// items.  Exact: parameter symmetries shrink the problem, then the same
  /// mode-centered inversion as binomial() walks the pmf recurrence
  /// outward from the mode, O(stddev) expected.
  ///
  /// `log_fact(x)` must return log(x!) for the integral-valued double x;
  /// the overload below passes lgamma.  Hot callers (the batch engine
  /// draws dozens of hypergeometrics per batch) pass a precomputed table
  /// of the very same lgamma values, which removes the dominant cost
  /// without changing a single bit of output.
  template <typename LogFact>
  std::uint64_t hypergeometric(std::uint64_t total, std::uint64_t marked,
                               std::uint64_t m, LogFact&& log_fact) noexcept {
    PPK_EXPECTS(marked <= total && m <= total);
    if (m == 0 || marked == 0) return 0;
    if (marked == total) return m;
    if (m == total) return marked;
    // Symmetries: sample the complement when it is smaller.
    if (m > total / 2) {
      return marked - hypergeometric(total, marked, total - m, log_fact);
    }
    if (marked > total / 2) {
      return m - hypergeometric(total, total - marked, m, log_fact);
    }
    const double nd = static_cast<double>(total);
    const double kd = static_cast<double>(marked);
    const double md = static_cast<double>(m);
    // Support [x_min, x_max]; after the reductions x_min is usually 0.
    const std::uint64_t x_min = m + marked > total ? m + marked - total : 0;
    const std::uint64_t x_max = marked < m ? marked : m;
    auto mode = static_cast<std::uint64_t>(
        (md + 1.0) * (kd + 1.0) / (nd + 2.0));  // floor; in [x_min, x_max]
    if (mode < x_min) mode = x_min;  // guard float rounding at the edges
    if (mode > x_max) mode = x_max;
    auto log_choose = [&log_fact](double a, double b) {
      return log_fact(a) - log_fact(b) - log_fact(a - b);
    };
    const double log_pmf_mode =
        log_choose(kd, static_cast<double>(mode)) +
        log_choose(nd - kd, md - static_cast<double>(mode)) -
        log_choose(nd, md);
    // pmf(x+1)/pmf(x) = (marked-x)(m-x) / ((x+1)(total-marked-m+x+1)).
    auto up_ratio = [&](std::uint64_t x) {
      return (kd - static_cast<double>(x)) * (md - static_cast<double>(x)) /
             ((static_cast<double>(x) + 1.0) *
              (nd - kd - md + static_cast<double>(x) + 1.0));
    };
    const double u = uniform01();
    double lo_pmf = std::exp(log_pmf_mode);
    double hi_pmf = lo_pmf;
    double cdf = lo_pmf;
    if (u < cdf) return mode;
    std::uint64_t lo = mode;
    std::uint64_t hi = mode;
    while (lo > x_min || hi < x_max) {
      if (lo > x_min) {
        lo_pmf /= up_ratio(lo - 1);
        cdf += lo_pmf;
        --lo;
        if (u < cdf) return lo;
      }
      if (hi < x_max) {
        hi_pmf *= up_ratio(hi);
        cdf += hi_pmf;
        ++hi;
        if (u < cdf) return hi;
      }
    }
    return mode;  // cdf rounding sliver; return the mode
  }

  std::uint64_t hypergeometric(std::uint64_t total, std::uint64_t marked,
                               std::uint64_t m) noexcept {
    return hypergeometric(total, marked, m,
                          [](double x) { return std::lgamma(x + 1.0); });
  }

  /// The full 256-bit generator state, for snapshot/restore.  Restoring a
  /// saved state resumes the stream at exactly the draw where it was saved.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  /// Restores a state previously obtained from state().  The all-zero state
  /// is a fixed point of xoshiro256** and therefore rejected.
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    PPK_EXPECTS((state[0] | state[1] | state[2] | state[3]) != 0);
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the seed of the `stream`-th independent generator from a master
/// seed.  Distinct streams come from distinct SplitMix64 outputs, so trials
/// scheduled on different threads reproduce bit-for-bit regardless of the
/// execution order.
inline std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                        std::uint64_t stream) noexcept {
  SplitMix64 mix(master_seed ^ (0x5851f42d4c957f2dULL * (stream + 1)));
  mix.next();
  return mix.next();
}

}  // namespace ppk
