// AVX2 kernel implementations for util/simd.hpp.
//
// Compiled into every build (per-function `target("avx2")` attributes, no
// -mavx2 flag needed) but dispatched only when the CPU reports AVX2 at
// runtime -- detail::avx2_kernels() returns null otherwise, and on
// non-x86-64 targets this translation unit compiles to just that null.
//
// Every kernel here must match its scalar reference in simd.cpp bit for
// bit; see the dispatch contract in simd.hpp.  The integer kernels match
// structurally (exact mod-2^64 arithmetic, order-free).  hyper_block4
// matches because the cumulative products use the identical scalar
// operation tree and only the 4 divisions and the final scale are packed
// (IEEE divide and multiply are correctly rounded per lane).

#include "util/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPK_HAVE_AVX2_TU 1
#include <immintrin.h>
#else
#define PPK_HAVE_AVX2_TU 0
#endif

namespace ppk::simd::detail {

#if PPK_HAVE_AVX2_TU

namespace {

#define PPK_AVX2 __attribute__((target("avx2")))

/// Widens 8 u32 lanes into two 4-lane u64 vectors and accumulates
/// acc += a * b per lane (32x32 -> 64 multiply).
PPK_AVX2 inline __m256i mul_acc_lo(__m256i acc, __m256i a32,
                                   __m256i b32) noexcept {
  const __m256i a = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(a32));
  const __m256i b = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(b32));
  return _mm256_add_epi64(acc, _mm256_mul_epu32(a, b));
}

PPK_AVX2 inline __m256i mul_acc_hi(__m256i acc, __m256i a32,
                                   __m256i b32) noexcept {
  const __m256i a = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(a32, 1));
  const __m256i b = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(b32, 1));
  return _mm256_add_epi64(acc, _mm256_mul_epu32(a, b));
}

PPK_AVX2 inline std::uint64_t hsum_epi64(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Weight vector of one 8-cell block: counts[cell_p[i]]*(counts[cell_q[i]]
/// - diag[i]) accumulated into `acc` (u64 lanes, mod 2^64).
PPK_AVX2 inline __m256i block_weights_acc(__m256i acc,
                                          const std::uint32_t* counts,
                                          const std::int32_t* cell_p,
                                          const std::int32_t* cell_q,
                                          const std::uint32_t* diag,
                                          std::size_t i) noexcept {
  const auto* base = reinterpret_cast<const int*>(counts);
  const __m256i idx_p =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(cell_p + i));
  const __m256i idx_q =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(cell_q + i));
  const __m256i d =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(diag + i));
  const __m256i cp = _mm256_i32gather_epi32(base, idx_p, 4);
  __m256i cq = _mm256_i32gather_epi32(base, idx_q, 4);
  cq = _mm256_sub_epi32(cq, d);  // wraps only where cp == 0 (diag zero cell)
  acc = mul_acc_lo(acc, cp, cq);
  return mul_acc_hi(acc, cp, cq);
}

PPK_AVX2 std::uint64_t pair_weight_total_avx2(const std::uint32_t* counts,
                                              const std::int32_t* cell_p,
                                              const std::int32_t* cell_q,
                                              const std::uint32_t* diag,
                                              std::size_t m) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t i = 0; i < m; i += 8) {
    acc = block_weights_acc(acc, counts, cell_p, cell_q, diag, i);
  }
  return hsum_epi64(acc);
}

PPK_AVX2 std::size_t pair_weight_pick_avx2(const std::uint32_t* counts,
                                           const std::int32_t* cell_p,
                                           const std::int32_t* cell_q,
                                           const std::uint32_t* diag,
                                           std::size_t m,
                                           std::uint64_t u) noexcept {
  for (std::size_t i = 0; i < m; i += 8) {
    const __m256i acc = block_weights_acc(_mm256_setzero_si256(), counts,
                                          cell_p, cell_q, diag, i);
    const std::uint64_t block = hsum_epi64(acc);
    if (u >= block) {
      u -= block;
      continue;
    }
    // The selected cell is in this block: finish with the scalar scan
    // (identical in-order semantics; exact integers make the tile split
    // invisible).
    for (std::size_t j = i; j < i + 8; ++j) {
      const std::uint64_t cp = counts[cell_p[j]];
      const std::uint32_t cq = counts[cell_q[j]] - diag[j];
      const std::uint64_t w = cp * cq;
      if (u < w) return j;
      u -= w;
    }
  }
  return m;  // unreachable when u < total
}

PPK_AVX2 std::uint64_t collision_row_total_avx2(const std::uint32_t* counts,
                                                const std::uint32_t* fresh,
                                                std::size_t d_padded,
                                                std::uint32_t s1) noexcept {
  const std::uint64_t c1 = counts[s1];
  const std::uint64_t f1 = fresh[s1];
  const __m256i c1v = _mm256_set1_epi64x(static_cast<long long>(c1));
  const __m256i f1v = _mm256_set1_epi64x(static_cast<long long>(f1));
  __m256i acc_c = _mm256_setzero_si256();
  __m256i acc_f = _mm256_setzero_si256();
  for (std::size_t s2 = 0; s2 < d_padded; s2 += 8) {
    const __m256i c =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(counts + s2));
    const __m256i f =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(fresh + s2));
    const __m256i c_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(c));
    const __m256i c_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(c, 1));
    const __m256i f_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(f));
    const __m256i f_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(f, 1));
    acc_c = _mm256_add_epi64(acc_c, _mm256_mul_epu32(c1v, c_lo));
    acc_c = _mm256_add_epi64(acc_c, _mm256_mul_epu32(c1v, c_hi));
    acc_f = _mm256_add_epi64(acc_f, _mm256_mul_epu32(f1v, f_lo));
    acc_f = _mm256_add_epi64(acc_f, _mm256_mul_epu32(f1v, f_hi));
  }
  return hsum_epi64(acc_c) - hsum_epi64(acc_f) + f1 - c1;
}

PPK_AVX2 void add_i64_avx2(std::int64_t* dst, const std::int64_t* src,
                           std::size_t m) noexcept {
  for (std::size_t i = 0; i < m; i += 4) {
    const __m256i a =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dst + i),
                       _mm256_add_epi64(a, b));
  }
}

PPK_AVX2 void hyper_block4_avx2(const double* num, const double* den,
                                double pmf_in, double* pmf_out) noexcept {
  // Cumulative products use the scalar reference's exact operation tree;
  // only the divisions and the final scale are packed.
  const double na = num[0] * num[1];
  const double nb = num[2] * num[3];
  const double da = den[0] * den[1];
  const double db = den[2] * den[3];
  const __m256d cn = _mm256_set_pd(na * nb, na * num[2], na, num[0]);
  const __m256d cd = _mm256_set_pd(da * db, da * den[2], da, den[0]);
  const __m256d q = _mm256_div_pd(cn, cd);
  const __m256d out = _mm256_mul_pd(_mm256_set1_pd(pmf_in), q);
  _mm256_storeu_pd(pmf_out, out);
}

constexpr Kernels kAvx2 = {&pair_weight_total_avx2, &pair_weight_pick_avx2,
                           &collision_row_total_avx2, &add_i64_avx2,
                           &hyper_block4_avx2};

}  // namespace

const Kernels* avx2_kernels() noexcept {
  return __builtin_cpu_supports("avx2") ? &kAvx2 : nullptr;
}

#else  // !PPK_HAVE_AVX2_TU

const Kernels* avx2_kernels() noexcept { return nullptr; }

#endif

}  // namespace ppk::simd::detail
