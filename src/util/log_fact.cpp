#include "util/log_fact.hpp"

#include <algorithm>
#include <mutex>

namespace ppk {

namespace {

struct SharedState {
  std::mutex mutex;
  std::shared_ptr<const LogFactTable::Table> table;
};

SharedState& shared_state() {
  static SharedState state;
  return state;
}

}  // namespace

std::shared_ptr<const LogFactTable::Table> LogFactTable::shared(
    std::uint64_t limit) {
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(limit, kLogFactTableSize - 1) + 1);
  SharedState& state = shared_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.table != nullptr && state.table->size() >= want) {
    return state.table;
  }
  // Grow by copying the existing prefix: lgamma values are pure, so the
  // extension is bit-identical to a from-scratch fill, and readers holding
  // the old snapshot are unaffected.
  auto grown = std::make_shared<Table>();
  grown->reserve(want);
  if (state.table != nullptr) *grown = *state.table;
  for (std::size_t i = grown->size(); i < want; ++i) {
    grown->push_back(std::lgamma(static_cast<double>(i) + 1.0));
  }
  state.table = std::move(grown);
  return state.table;
}

}  // namespace ppk
