// Scalar kernel implementations + runtime dispatch for util/simd.hpp.
//
// The scalar kernels are the semantic reference: the AVX2 translation unit
// (simd_avx2.cpp) must match them bit for bit, which the dispatch tests
// fuzz.  Note the deliberately lane-structured hyper_block4 -- the scalar
// code performs the vector path's exact operation tree so the FP results
// agree to the last bit (see the header's dispatch contract).

#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ppk::simd {

namespace {

std::uint64_t pair_weight_total_scalar(const std::uint32_t* counts,
                                       const std::int32_t* cell_p,
                                       const std::int32_t* cell_q,
                                       const std::uint32_t* diag,
                                       std::size_t m) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t cp = counts[cell_p[i]];
    // Wraps to 2^32-ish only on a diagonal cell with count 0, where cp == 0
    // zeroes the product -- same in both dispatches.
    const std::uint32_t cq =
        counts[cell_q[i]] - diag[i];
    total += cp * cq;
  }
  return total;
}

std::size_t pair_weight_pick_scalar(const std::uint32_t* counts,
                                    const std::int32_t* cell_p,
                                    const std::int32_t* cell_q,
                                    const std::uint32_t* diag, std::size_t m,
                                    std::uint64_t u) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t cp = counts[cell_p[i]];
    const std::uint32_t cq = counts[cell_q[i]] - diag[i];
    const std::uint64_t w = cp * cq;
    if (u < w) return i;
    u -= w;
  }
  return m;  // unreachable when u < total (padded cells weigh 0)
}

std::uint64_t collision_row_total_scalar(const std::uint32_t* counts,
                                         const std::uint32_t* fresh,
                                         std::size_t d_padded,
                                         std::uint32_t s1) noexcept {
  const std::uint64_t c1 = counts[s1];
  const std::uint64_t f1 = fresh[s1];
  std::uint64_t sum = 0;
  for (std::size_t s2 = 0; s2 < d_padded; ++s2) {
    sum += c1 * counts[s2] - f1 * fresh[s2];
  }
  // The diagonal lane computed c1*c1 - f1*f1; the ordered-distinct-pair
  // weight is c1*(c1-1) - f1*(f1-1).  fresh <= counts makes the correction
  // safe (row weight stays >= 0; intermediate wrap is mod-2^64 exact).
  return sum + f1 - c1;
}

void add_i64_scalar(std::int64_t* dst, const std::int64_t* src,
                    std::size_t m) noexcept {
  for (std::size_t i = 0; i < m; ++i) dst[i] += src[i];
}

void hyper_block4_scalar(const double* num, const double* den, double pmf_in,
                         double* pmf_out) noexcept {
  // The fixed product tree of the vector path, lane by lane.
  const double na = num[0] * num[1];
  const double nb = num[2] * num[3];
  const double cum_n0 = num[0];
  const double cum_n1 = na;
  const double cum_n2 = na * num[2];
  const double cum_n3 = na * nb;
  const double da = den[0] * den[1];
  const double db = den[2] * den[3];
  const double cum_d0 = den[0];
  const double cum_d1 = da;
  const double cum_d2 = da * den[2];
  const double cum_d3 = da * db;
  pmf_out[0] = pmf_in * (cum_n0 / cum_d0);
  pmf_out[1] = pmf_in * (cum_n1 / cum_d1);
  pmf_out[2] = pmf_in * (cum_n2 / cum_d2);
  pmf_out[3] = pmf_in * (cum_n3 / cum_d3);
}

constexpr detail::Kernels kScalar = {
    &pair_weight_total_scalar, &pair_weight_pick_scalar,
    &collision_row_total_scalar, &add_i64_scalar, &hyper_block4_scalar};

/// PPK_NO_SIMD unset, empty or "0" keeps SIMD eligible; anything else
/// forces scalar from startup (the CI forced-scalar leg).
bool simd_disabled_by_env() noexcept {
  const char* v = std::getenv("PPK_NO_SIMD");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::atomic<const detail::Kernels*>& active_slot() noexcept {
  static std::atomic<const detail::Kernels*> slot{[]() noexcept {
    const detail::Kernels* avx2 = detail::avx2_kernels();
    return (avx2 != nullptr && !simd_disabled_by_env()) ? avx2 : &kScalar;
  }()};
  return slot;
}

const detail::Kernels& active() noexcept {
  return *active_slot().load(std::memory_order_relaxed);
}

}  // namespace

namespace detail {
const Kernels& scalar_kernels() noexcept { return kScalar; }
}  // namespace detail

bool avx2_supported() noexcept { return detail::avx2_kernels() != nullptr; }

bool enabled() noexcept { return &active() != &kScalar; }

void set_enabled(bool on) noexcept {
  const detail::Kernels* next = &kScalar;
  if (on) {
    const detail::Kernels* avx2 = detail::avx2_kernels();
    if (avx2 != nullptr) next = avx2;
  }
  active_slot().store(next, std::memory_order_relaxed);
}

const char* active_name() noexcept { return enabled() ? "avx2" : "scalar"; }

std::uint64_t pair_weight_total(const std::uint32_t* counts,
                                const std::int32_t* cell_p,
                                const std::int32_t* cell_q,
                                const std::uint32_t* diag,
                                std::size_t m) noexcept {
  return active().pair_weight_total(counts, cell_p, cell_q, diag, m);
}

std::size_t pair_weight_pick(const std::uint32_t* counts,
                             const std::int32_t* cell_p,
                             const std::int32_t* cell_q,
                             const std::uint32_t* diag, std::size_t m,
                             std::uint64_t u) noexcept {
  return active().pair_weight_pick(counts, cell_p, cell_q, diag, m, u);
}

std::uint64_t collision_row_total(const std::uint32_t* counts,
                                  const std::uint32_t* fresh,
                                  std::size_t d_padded,
                                  std::uint32_t s1) noexcept {
  return active().collision_row_total(counts, fresh, d_padded, s1);
}

void add_i64(std::int64_t* dst, const std::int64_t* src,
             std::size_t m) noexcept {
  active().add_i64(dst, src, m);
}

void hyper_block4(const double* num, const double* den, double pmf_in,
                  double* pmf_out) noexcept {
  active().hyper_block4(num, den, pmf_in, pmf_out);
}

}  // namespace ppk::simd
