// Fenwick (binary indexed) tree over unsigned weights, specialized for the
// one operation the simulators need: "draw an index with probability
// proportional to its weight".
//
// The count engine keeps the state-count vector in one of these so a
// weighted draw is a single O(log |Q|) root-to-leaf descent instead of a
// linear prefix scan, and a transition's four +-1 count updates are four
// O(log |Q|) point updates.  The descent visits indices in the same
// cumulative order as a left-to-right prefix scan, so swapping the scan for
// the tree changes nothing about which index a given uniform draw maps to
// -- engines stay bit-reproducible across the upgrade.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ppk {

class FenwickTree {
 public:
  FenwickTree() = default;

  explicit FenwickTree(const std::vector<std::uint32_t>& weights) {
    assign(weights);
  }

  /// Rebuilds the tree over `weights` in O(size).
  void assign(const std::vector<std::uint32_t>& weights) {
    size_ = weights.size();
    tree_.resize(size_ + 1);
    rebuild(weights);
  }

  /// As assign(), but requires `weights.size() == size()` and never touches
  /// the tree's allocation.  Restore paths call this so a checkpointed
  /// resume loop (core/campaign.hpp restarts, the conformance snapshot net)
  /// rebuilds in place instead of reallocating per restore.
  void rebuild(const std::vector<std::uint32_t>& weights) {
    PPK_EXPECTS(weights.size() == size_);
    std::fill(tree_.begin(), tree_.end(), 0);
    total_ = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      total_ += weights[i];
      std::size_t node = i + 1;
      tree_[node] += weights[i];
      const std::size_t parent = node + (node & (0 - node));
      if (parent <= size_) tree_[parent] += tree_[node];
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Adds `delta` to the weight at `index`.  The caller must not drive any
  /// individual weight negative (checked indirectly: total() is unsigned).
  void add(std::size_t index, std::int64_t delta) {
    PPK_EXPECTS(index < size_);
    total_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(total_) + delta);
    for (std::size_t node = index + 1; node <= size_;
         node += node & (0 - node)) {
      tree_[node] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(tree_[node]) + delta);
    }
  }

  /// Sum of weights[0..index).
  [[nodiscard]] std::uint64_t prefix_sum(std::size_t index) const {
    PPK_EXPECTS(index <= size_);
    std::uint64_t sum = 0;
    for (std::size_t node = index; node > 0; node -= node & (0 - node)) {
      sum += tree_[node];
    }
    return sum;
  }

  /// The smallest index i with prefix_sum(i + 1) > u, i.e. the index a
  /// uniform draw u in [0, total()) selects when weights are laid out
  /// consecutively.  O(log size).
  [[nodiscard]] std::size_t sample(std::uint64_t u) const {
    PPK_EXPECTS(u < total_);
    std::size_t node = 0;
    std::size_t mask = 1;
    while (mask * 2 <= size_) mask *= 2;
    for (; mask > 0; mask /= 2) {
      const std::size_t next = node + mask;
      if (next <= size_ && tree_[next] <= u) {
        node = next;
        u -= tree_[next];
      }
    }
    PPK_ENSURES(node < size_);
    return node;
  }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based implicit binary indexed tree
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ppk
