// Compressed-sparse-row matrices and residual-certified iterative linear
// solves -- the sparse back end of the lumped Markov analysis
// (verify/lumped_markov.hpp), replacing the O(m^3) dense elimination that
// capped exact analysis at a few thousand configurations.
//
// The systems solved here are (I - Q) x = b with Q a sub-stochastic
// jump-chain matrix (non-negative rows summing to < 1 somewhere along
// every path to absorption), i.e. weakly diagonally dominant M-matrices:
// both Jacobi and Gauss-Seidel converge, and Gauss-Seidel in a
// topology-aware row order (the caller's job; see lumped_markov.cpp)
// converges in a handful of sweeps.  Convergence is never assumed: the
// solver certifies its answer with an explicitly recomputed residual
// (compensated summation, so the certificate itself is trustworthy) and
// reports failure honestly instead of returning a half-converged vector.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ppk::util {

/// Neumaier-compensated accumulator: exact enough that a residual computed
/// with it is a certificate, not an estimate.
struct CompensatedSum {
  /// Running sum.
  double sum = 0.0;
  /// Running compensation (lost low-order bits).
  double compensation = 0.0;

  /// Adds one term.
  void add(double value) noexcept {
    const double t = sum + value;
    if (std::abs(sum) >= std::abs(value)) {
      compensation += (sum - t) + value;
    } else {
      compensation += (value - t) + sum;
    }
    sum = t;
  }

  /// The compensated total.
  [[nodiscard]] double value() const noexcept { return sum + compensation; }
};

/// A sparse matrix in compressed-sparse-row form.
struct CsrMatrix {
  /// Number of rows.
  std::uint32_t rows = 0;
  /// Number of columns.
  std::uint32_t cols = 0;
  /// row_ptr[r] .. row_ptr[r+1] index the entries of row r (size rows+1).
  std::vector<std::size_t> row_ptr;
  /// Column index of each stored entry, ascending within a row.
  std::vector<std::uint32_t> col;
  /// Value of each stored entry.
  std::vector<double> value;

  /// Number of stored entries.
  [[nodiscard]] std::size_t nnz() const noexcept { return value.size(); }
};

/// Incremental CsrMatrix builder: add entries in any order, duplicates
/// accumulate.  O(nnz log nnz) build.
class CsrBuilder {
 public:
  /// Builder for a rows x cols matrix.
  CsrBuilder(std::uint32_t rows, std::uint32_t cols)
      : rows_(rows), cols_(cols) {}

  /// Schedules entry (row, col) += value.
  void add(std::uint32_t row, std::uint32_t col, double value) {
    PPK_EXPECTS(row < rows_ && col < cols_);
    entries_.push_back({row, col, value});
  }

  /// Assembles the matrix (sorts, merges duplicates).  The builder is
  /// consumed.
  [[nodiscard]] CsrMatrix build() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    CsrMatrix m;
    m.rows = rows_;
    m.cols = cols_;
    m.row_ptr.assign(rows_ + 1, 0);
    for (std::size_t i = 0; i < entries_.size();) {
      std::size_t j = i + 1;
      double sum = entries_[i].value;
      while (j < entries_.size() && entries_[j].row == entries_[i].row &&
             entries_[j].col == entries_[i].col) {
        sum += entries_[j].value;
        ++j;
      }
      m.col.push_back(entries_[i].col);
      m.value.push_back(sum);
      ++m.row_ptr[entries_[i].row + 1];
      i = j;
    }
    for (std::uint32_t r = 0; r < rows_; ++r) m.row_ptr[r + 1] += m.row_ptr[r];
    entries_.clear();
    return m;
  }

 private:
  struct Entry {
    std::uint32_t row, col;
    double value;
  };
  std::uint32_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// Iterative-solver configuration.
struct SolveOptions {
  /// Sweep kind.
  enum class Method : std::uint8_t {
    kGaussSeidel,  // in-place sweeps; fast in a topology-aware row order
    kJacobi,       // two-vector sweeps; order-independent reference
  };
  /// Sweep kind (default Gauss-Seidel).
  Method method = Method::kGaussSeidel;
  /// Hard sweep cap; failure to certify within it is reported, not hidden.
  std::uint32_t max_sweeps = 100'000;
  /// Relative residual target: certify when
  /// ||b - A x||_inf <= tolerance * (||A||_inf * ||x||_inf + ||b||_inf).
  double tolerance = 1e-13;
  /// Residual is recomputed (compensated) every this many sweeps.
  std::uint32_t check_every = 8;
};

/// Outcome of a solve: the certificate the caller must inspect.
struct SolveCertificate {
  /// True iff the residual bound below was met.
  bool converged = false;
  /// Sweeps performed.
  std::uint32_t sweeps = 0;
  /// Final ||b - A x||_inf, recomputed with compensated summation.
  double residual = 0.0;
  /// The bound `residual` was required to meet.
  double residual_bound = 0.0;
};

/// Solves A x = b iteratively, overwriting `x` (whose incoming contents
/// seed the iteration; zeros are a fine start).  Every row of A must carry
/// a nonzero diagonal entry.  Returns the convergence certificate --
/// callers must check `converged` and treat failure as an error, never as
/// an approximate answer.
[[nodiscard]] inline SolveCertificate solve_sparse(
    const CsrMatrix& a, const std::vector<double>& b, std::vector<double>& x,
    const SolveOptions& options = {}) {
  PPK_EXPECTS(a.rows == a.cols);
  PPK_EXPECTS(b.size() == a.rows);
  x.resize(a.rows, 0.0);

  // Locate diagonals and the matrix / rhs norms for the residual bound.
  std::vector<std::size_t> diag(a.rows);
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    std::size_t d = SIZE_MAX;
    double row_sum = 0.0;
    for (std::size_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      row_sum += std::abs(a.value[i]);
      if (a.col[i] == r) d = i;
    }
    if (d == SIZE_MAX || a.value[d] == 0.0) {
      return {false, 0, std::numeric_limits<double>::infinity(), 0.0};
    }
    diag[r] = d;
    norm_a = std::max(norm_a, row_sum);
    norm_b = std::max(norm_b, std::abs(b[r]));
  }

  const auto residual_inf = [&]() {
    double worst = 0.0;
    for (std::uint32_t r = 0; r < a.rows; ++r) {
      CompensatedSum acc;
      acc.add(b[r]);
      for (std::size_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
        acc.add(-a.value[i] * x[a.col[i]]);
      }
      worst = std::max(worst, std::abs(acc.value()));
    }
    return worst;
  };
  const auto bound = [&]() {
    double norm_x = 0.0;
    for (const double v : x) norm_x = std::max(norm_x, std::abs(v));
    return options.tolerance * (norm_a * norm_x + norm_b);
  };

  SolveCertificate cert;
  std::vector<double> next;  // Jacobi scratch
  if (options.method == SolveOptions::Method::kJacobi) next.resize(a.rows);
  const std::uint32_t stride = std::max(options.check_every, 1u);
  while (cert.sweeps < options.max_sweeps) {
    for (std::uint32_t r = 0; r < a.rows; ++r) {
      CompensatedSum acc;
      acc.add(b[r]);
      for (std::size_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
        if (i == diag[r]) continue;
        acc.add(-a.value[i] * x[a.col[i]]);
      }
      const double updated = acc.value() / a.value[diag[r]];
      if (options.method == SolveOptions::Method::kJacobi) {
        next[r] = updated;
      } else {
        x[r] = updated;
      }
    }
    if (options.method == SolveOptions::Method::kJacobi) x.swap(next);
    ++cert.sweeps;
    if (cert.sweeps % stride == 0 || cert.sweeps == options.max_sweeps) {
      cert.residual = residual_inf();
      cert.residual_bound = bound();
      if (cert.residual <= cert.residual_bound) {
        cert.converged = true;
        return cert;
      }
    }
  }
  cert.residual = residual_inf();
  cert.residual_bound = bound();
  cert.converged = cert.residual <= cert.residual_bound;
  return cert;
}

}  // namespace ppk::util
