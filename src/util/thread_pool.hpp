// Fixed-size thread pool used by the Monte-Carlo runner.
//
// Design notes:
//  - Work items are type-erased std::function<void()>; trials are coarse
//    (milliseconds to minutes each), so the indirection cost is irrelevant.
//  - `parallel_for_index` hands out indices via an atomic counter rather than
//    pre-chunking, which keeps long-tailed trials (stabilisation time varies
//    by orders of magnitude across seeds) load-balanced.
//  - Exceptions thrown by a work item are captured and rethrown on the
//    caller's thread after all items finish, so failures are not lost.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ppk {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.  Rethrows the first
  /// exception captured from a task, if any.
  void wait_idle();

  /// Runs body(i) for i in [0, count), load-balanced across the pool.  The
  /// calling thread participates too, so a 1-thread pool degrades gracefully
  /// to serial execution.  Blocks until all indices are processed.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_one(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ppk
