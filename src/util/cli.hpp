// Tiny declarative command-line flag parser for the benches and examples.
//
// Usage:
//   ppk::Cli cli("fig5_scaling_n", "Regenerates Figure 5 of the paper.");
//   auto trials = cli.flag<int>("trials", 100, "trials per data point");
//   auto fast   = cli.flag<bool>("fast", false, "clip the sweep");
//   cli.parse(argc, argv);            // exits with usage on error / --help
//   run(*trials, *fast);
//
// Flags are spelled `--name value` or `--name=value`; bool flags may omit the
// value (`--fast` == `--fast=true`).  Unknown flags are an error so typos in
// experiment scripts fail loudly instead of silently running the default.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppk {

class Cli {
 public:
  Cli(std::string program, std::string description);
  ~Cli();

  Cli(const Cli&) = delete;
  Cli& operator=(const Cli&) = delete;

  /// Registers a flag and returns a stable pointer to its value, which is
  /// filled in by parse().  T in {bool, int, long long, double, std::string}.
  template <typename T>
  std::shared_ptr<T> flag(std::string_view name, T default_value,
                          std::string_view help);

  /// Parses argv.  On `--help` prints usage and exits 0; on malformed input
  /// prints a diagnostic plus usage and exits 2.
  void parse(int argc, const char* const* argv);

  /// Renders the usage text (exposed for tests).
  [[nodiscard]] std::string usage() const;

  /// Non-exiting parse used by unit tests: returns an error message instead
  /// of exiting, or std::nullopt on success.
  [[nodiscard]] std::optional<std::string> try_parse(
      const std::vector<std::string>& args);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ppk
