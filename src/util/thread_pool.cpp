#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ppk {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PPK_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    PPK_EXPECTS(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  // One task per worker; the caller drains indices too.
  for (std::size_t w = 0; w < workers_.size(); ++w) submit(drain);
  drain();
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_one(task);
  }
}

void ThreadPool::run_one(const std::function<void()>& task) {
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard lock(mutex_);
  if (error && !first_error_) first_error_ = error;
  if (--in_flight_ == 0) cv_idle_.notify_all();
}

}  // namespace ppk
