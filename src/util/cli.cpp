#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <utility>
#include <variant>

namespace ppk {

namespace {

using FlagValue =
    std::variant<std::shared_ptr<bool>, std::shared_ptr<int>,
                 std::shared_ptr<long long>, std::shared_ptr<double>,
                 std::shared_ptr<std::string>>;

std::optional<std::string> assign(const std::shared_ptr<bool>& out,
                                  std::string_view text) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
  } else if (text == "false" || text == "0" || text == "no") {
    *out = false;
  } else {
    return "expected a boolean, got '" + std::string(text) + "'";
  }
  return std::nullopt;
}

template <typename T>
std::optional<std::string> assign_number(const std::shared_ptr<T>& out,
                                         std::string_view text) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    return "expected a number, got '" + std::string(text) + "'";
  }
  *out = value;
  return std::nullopt;
}

std::optional<std::string> assign(const std::shared_ptr<int>& out,
                                  std::string_view text) {
  return assign_number(out, text);
}
std::optional<std::string> assign(const std::shared_ptr<long long>& out,
                                  std::string_view text) {
  return assign_number(out, text);
}
std::optional<std::string> assign(const std::shared_ptr<double>& out,
                                  std::string_view text) {
  return assign_number(out, text);
}
std::optional<std::string> assign(const std::shared_ptr<std::string>& out,
                                  std::string_view text) {
  *out = std::string(text);
  return std::nullopt;
}

}  // namespace

struct Cli::Impl {
  struct Flag {
    std::string name;
    std::string help;
    std::string default_text;
    FlagValue value;

    [[nodiscard]] bool is_bool() const {
      return std::holds_alternative<std::shared_ptr<bool>>(value);
    }

    std::optional<std::string> set(std::string_view text) {
      return std::visit(
          [&](const auto& out) -> std::optional<std::string> {
            return assign(out, text);
          },
          value);
    }
  };

  std::string program;
  std::string description;
  std::vector<Flag> flags;

  Flag* find(std::string_view name) {
    for (auto& flag : flags) {
      if (flag.name == name) return &flag;
    }
    return nullptr;
  }
};

Cli::Cli(std::string program, std::string description)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = std::move(program);
  impl_->description = std::move(description);
}

Cli::~Cli() = default;

template <typename T>
std::shared_ptr<T> Cli::flag(std::string_view name, T default_value,
                             std::string_view help) {
  auto value = std::make_shared<T>(std::move(default_value));
  std::ostringstream default_text;
  if constexpr (std::is_same_v<T, bool>) {
    default_text << (*value ? "true" : "false");
  } else {
    default_text << *value;
  }
  impl_->flags.push_back(Impl::Flag{std::string(name), std::string(help),
                                    default_text.str(), value});
  return value;
}

template std::shared_ptr<bool> Cli::flag<bool>(std::string_view, bool,
                                               std::string_view);
template std::shared_ptr<int> Cli::flag<int>(std::string_view, int,
                                             std::string_view);
template std::shared_ptr<long long> Cli::flag<long long>(std::string_view,
                                                         long long,
                                                         std::string_view);
template std::shared_ptr<double> Cli::flag<double>(std::string_view, double,
                                                   std::string_view);
template std::shared_ptr<std::string> Cli::flag<std::string>(std::string_view,
                                                             std::string,
                                                             std::string_view);

std::string Cli::usage() const {
  std::ostringstream out;
  out << impl_->program << " -- " << impl_->description << "\n\nFlags:\n";
  for (const auto& flag : impl_->flags) {
    out << "  --" << flag.name << "  " << flag.help
        << " (default: " << flag.default_text << ")\n";
  }
  out << "  --help  show this message\n";
  return out.str();
}

std::optional<std::string> Cli::try_parse(
    const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (arg == "--help") return "help";
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      return "unexpected argument '" + std::string(arg) + "'";
    }
    arg.remove_prefix(2);

    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    Impl::Flag* flag = impl_->find(name);
    if (flag == nullptr) {
      return "unknown flag '--" + std::string(name) + "'";
    }

    std::string_view text;
    if (inline_value) {
      text = *inline_value;
    } else if (flag->is_bool()) {
      text = "true";
    } else if (i + 1 < args.size()) {
      text = args[++i];
    } else {
      return "flag '--" + std::string(name) + "' needs a value";
    }

    if (auto error = flag->set(text)) {
      return "flag '--" + std::string(name) + "': " + *error;
    }
  }
  return std::nullopt;
}

void Cli::parse(int argc, const char* const* argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto error = try_parse(args);
  if (!error) return;
  if (*error == "help") {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  std::fprintf(stderr, "%s: %s\n\n%s", impl_->program.c_str(), error->c_str(),
               usage().c_str());
  std::exit(2);
}

}  // namespace ppk
