// Cache-line-aligned vectors for the structure-of-arrays engine tiles.
//
// The sharded batch engine keeps its per-state count mirrors, pair-cell
// index arrays and per-shard delta tiles in 64-byte-aligned storage:
// aligned loads let the SIMD kernels use full-width moves without peeling,
// and the per-shard scratch blocks start on their own cache line so worker
// threads never false-share a line during a parallel matching phase.  The
// allocator over-allocates by alignment and is otherwise a plain minimal
// std allocator; AlignedVector<T> is the only intended spelling.

#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace ppk {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t count) {
    if (count == 0) return nullptr;
    void* p = ::operator new(count * sizeof(T), std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ppk
