// Runtime-dispatched SIMD kernels for the structure-of-arrays batch engine.
//
// Dispatch contract -- the part that makes SIMD admissible in engines whose
// trajectories are pinned bit-for-bit by the conformance nets:
//
//   Every kernel has a scalar implementation and an AVX2 implementation
//   that produce IDENTICAL results, bit for bit, for every input.
//
// For the integer kernels (pair-weight totals, weighted picks, tile
// reductions) this is free: unsigned arithmetic is exact and associative
// mod 2^64, so lane order cannot matter.  For the one floating-point kernel
// (the blocked hypergeometric pmf evaluation) identity is engineered: both
// implementations perform the same IEEE double operations in the same
// balanced-tree order -- the scalar fallback mirrors the vector lane
// structure rather than the other way around -- and every operation used
// (mul, div) is correctly rounded per lane by IEEE 754.  The build disables
// FP contraction globally (-ffp-contract=off, root CMakeLists) so an
// -mavx2 compile cannot fuse the scalar path's multiplies into FMAs and
// break the equivalence.  tests/util_simd_test.cpp fuzzes both paths
// against each other; the engine-level guarantee (same trajectory under
// PPK_NO_SIMD=1) rides on this.
//
// Dispatch policy: the AVX2 path is selected iff the CPU reports AVX2,
// the build compiled the AVX2 translation unit (x86-64 with GCC/Clang)
// and the PPK_NO_SIMD environment variable is unset/empty/"0" at first
// use.  set_enabled(false) forces the scalar path at runtime (the test
// hook); set_enabled(true) re-enables AVX2 only where supported.
//
// Kernel preconditions: `counts`/`fresh` point at 64-byte-aligned arrays
// padded to a multiple of 8 entries with zero-count sentinel slots, and the
// cell index arrays are padded with sentinel indices referring to such a
// zero slot, so padded cells carry weight 0 and cannot perturb totals or
// picks.  AlignedVector (util/aligned.hpp) is the intended storage.

#pragma once

#include <cstddef>
#include <cstdint>

namespace ppk::simd {

/// True iff this build carries the AVX2 kernels and the CPU supports them.
[[nodiscard]] bool avx2_supported() noexcept;

/// True iff the AVX2 kernels are currently dispatched.
[[nodiscard]] bool enabled() noexcept;

/// Test hook: force the scalar kernels (false) or restore AVX2 where
/// supported (true).  Enabling on a machine without AVX2 is a no-op.
/// Not thread-safe against in-flight kernel calls; flip it between runs.
void set_enabled(bool on) noexcept;

/// Human-readable name of the active dispatch ("avx2" or "scalar"), for
/// bench reports and logs.
[[nodiscard]] const char* active_name() noexcept;

// ---------------------------------------------------------------------------
// Integer kernels (exact; SIMD/scalar identity is structural)

/// Sum over i < m of counts[cell_p[i]] * (counts[cell_q[i]] - diag[i]),
/// in u64 arithmetic -- the total effective-pair weight of a cell list.
/// diag[i] is 1 for p == q cells (ordered pairs of distinct agents within
/// one state), else 0.  m must be a multiple of 8; padded cells must index
/// a zero-count slot.
[[nodiscard]] std::uint64_t pair_weight_total(const std::uint32_t* counts,
                                              const std::int32_t* cell_p,
                                              const std::int32_t* cell_q,
                                              const std::uint32_t* diag,
                                              std::size_t m) noexcept;

/// The index a uniform draw u in [0, pair_weight_total(...)) selects when
/// the cell weights are laid out consecutively -- identical semantics to
/// the linear scan `if (u < w_i) return i; u -= w_i`.
[[nodiscard]] std::size_t pair_weight_pick(const std::uint32_t* counts,
                                           const std::int32_t* cell_p,
                                           const std::int32_t* cell_q,
                                           const std::uint32_t* diag,
                                           std::size_t m,
                                           std::uint64_t u) noexcept;

/// Total collision weight of ordered state-pair row s1 against every s2 in
/// [0, d_padded): sum of c1*(c2 - [s1==s2]) - f1*(f2 - [s1==s2]) where
/// c = counts, f = fresh (the not-yet-touched sub-population; f <= c
/// pointwise).  d_padded must be a multiple of 8 with zeroed padding.
[[nodiscard]] std::uint64_t collision_row_total(const std::uint32_t* counts,
                                                const std::uint32_t* fresh,
                                                std::size_t d_padded,
                                                std::uint32_t s1) noexcept;

/// Adds src[i] to dst[i] for i < m (the shard-delta reduction).  m must be
/// a multiple of 8; both arrays 64-byte aligned.
void add_i64(std::int64_t* dst, const std::int64_t* src,
             std::size_t m) noexcept;

// ---------------------------------------------------------------------------
// Floating-point kernel (SIMD/scalar identity is engineered; see header)

/// Blocked pmf-recurrence step for the mode-centered hypergeometric walk.
/// Given per-step ratio numerators num[0..3] and denominators den[0..3]
/// (each finite and nonzero; pad unused steps with 1.0), computes
///
///   pmf_out[j] = pmf_in * (num[0]*...*num[j]) / (den[0]*...*den[j])
///
/// with the fixed product tree  a = n0*n1, b = n2*n3,
/// cum = {n0, a, a*n2, a*b}  (same for den), one IEEE division per lane,
/// one scale by pmf_in.  Both dispatches produce identical bits.
void hyper_block4(const double* num, const double* den, double pmf_in,
                  double* pmf_out) noexcept;

// ---------------------------------------------------------------------------
// Implementation plumbing (internal; exposed for the dispatch tests)

namespace detail {

struct Kernels {
  std::uint64_t (*pair_weight_total)(const std::uint32_t*, const std::int32_t*,
                                     const std::int32_t*, const std::uint32_t*,
                                     std::size_t) noexcept;
  std::size_t (*pair_weight_pick)(const std::uint32_t*, const std::int32_t*,
                                  const std::int32_t*, const std::uint32_t*,
                                  std::size_t, std::uint64_t) noexcept;
  std::uint64_t (*collision_row_total)(const std::uint32_t*,
                                       const std::uint32_t*, std::size_t,
                                       std::uint32_t) noexcept;
  void (*add_i64)(std::int64_t*, const std::int64_t*, std::size_t) noexcept;
  void (*hyper_block4)(const double*, const double*, double,
                       double*) noexcept;
};

[[nodiscard]] const Kernels& scalar_kernels() noexcept;
/// Null when the build carries no AVX2 translation unit.
[[nodiscard]] const Kernels* avx2_kernels() noexcept;

}  // namespace detail

}  // namespace ppk::simd
