// Descriptive statistics for trial aggregation: streaming mean/variance
// (Welford's algorithm, numerically stable for the huge interaction counts
// the k-sweep produces) and order statistics over collected samples.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ppk::analysis {

/// Streaming mean / variance / extrema accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ == 0 ? 0.0
                       : stddev() / std::sqrt(static_cast<double>(count_));
  }

  /// Half-width of the normal-approximation 95% confidence interval for the
  /// mean (the paper averages 100 trials, well into CLT territory).
  [[nodiscard]] double ci95_halfwidth() const noexcept {
    return 1.959963984540054 * sem();
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample set by linear interpolation (type-7, the
/// numpy/R default).  `q` in [0, 1].  Sorts a copy.
inline double quantile(std::vector<double> samples, double q) {
  PPK_EXPECTS(!samples.empty());
  PPK_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

inline double median(std::vector<double> samples) {
  return quantile(std::move(samples), 0.5);
}

/// Summary of a finished sample set.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

inline Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats stats;
  for (double x : samples) stats.add(x);
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.ci95 = stats.ci95_halfwidth();
  s.min = stats.min();
  s.median = median(samples);
  s.max = stats.max();
  return s;
}

}  // namespace ppk::analysis
