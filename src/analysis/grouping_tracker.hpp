// Per-grouping interaction accounting (Section 5.1 / Figure 4 of the
// paper).
//
// The paper defines NI_i as the number of interactions until the i-th
// "grouping" -- the i-th time an agent enters state g_k, after which one
// full set {g1..gk} is permanently locked in -- and studies the increments
// NI'_i = NI_i - NI_(i-1).  The Monte-Carlo runner records the interaction
// index of every g_k entry (watch_marks); this helper turns those marks
// into per-grouping increments and averages them across trials.

#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stats.hpp"
#include "pp/monte_carlo.hpp"
#include "util/assert.hpp"

namespace ppk::analysis {

struct GroupingBreakdown {
  /// mean_increment[i] = average of NI'_(i+1) over all trials.
  std::vector<double> mean_increment;
  /// Mean interactions spent after the last grouping until stabilization
  /// (the "last part": settling the remaining n mod k agents).
  double mean_tail = 0.0;
  /// Number of groupings = floor(n / k), identical across trials.
  std::size_t groupings = 0;
};

/// Computes the Figure-4 breakdown from a Monte-Carlo result whose trials
/// were run with watch_state = g_k.  Every trial of a correct run has
/// exactly floor(n/k) marks (one per locked-in group set).
inline GroupingBreakdown grouping_breakdown(
    const pp::MonteCarloResult& result) {
  GroupingBreakdown breakdown;
  if (result.trials.empty()) return breakdown;
  breakdown.groupings = result.trials.front().watch_marks.size();

  std::vector<OnlineStats> increments(breakdown.groupings);
  OnlineStats tail;
  for (const auto& trial : result.trials) {
    PPK_EXPECTS(trial.watch_marks.size() == breakdown.groupings);
    std::uint64_t previous = 0;  // NI_0 = 0 by the paper's definition
    for (std::size_t i = 0; i < trial.watch_marks.size(); ++i) {
      const std::uint64_t mark = trial.watch_marks[i];
      PPK_ASSERT(mark >= previous);
      increments[i].add(static_cast<double>(mark - previous));
      previous = mark;
    }
    tail.add(static_cast<double>(trial.interactions - previous));
  }

  breakdown.mean_increment.reserve(increments.size());
  for (const auto& stats : increments) {
    breakdown.mean_increment.push_back(stats.mean());
  }
  breakdown.mean_tail = tail.mean();
  return breakdown;
}

}  // namespace ppk::analysis
