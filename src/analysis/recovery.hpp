// Fault-injection campaigns: the repeated experiment of the robustness
// study.  Each trial runs the k-partition system under a seed-reproducible
// fault schedule (crashes, joins, corruption, stuck agents) and records
// whether and how fast the population re-converges to the uniform partition
// of the *surviving* agents.
//
// Two modes, for an honest comparison:
//  - with_recovery = true: the epoch-stamped self-healing wrapper plus the
//    RecoveryManager (core/recovery.hpp).
//  - with_recovery = false: the bare paper protocol with a churn-aware
//    stable-pattern oracle; crashes break the Lemma 1 bookkeeping and the
//    trial typically exhausts its interaction budget unstabilized -- that
//    is the measured result, not a hang (satellite of the same PR).

#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stats.hpp"
#include "pp/faults.hpp"
#include "pp/protocol.hpp"

namespace ppk::analysis {

struct RecoveryOptions {
  std::uint32_t trials = 20;
  std::uint64_t master_seed = 0xFA17ULL;
  /// Generous but finite: a post-fault population that cannot stabilize
  /// terminates with stabilized = false instead of spinning.
  std::uint64_t max_interactions = 50'000'000;
  std::size_t threads = 1;
  /// Per-interaction fault probabilities expanded into a deterministic
  /// per-trial schedule over the first `fault_horizon` interactions.
  pp::FaultRates rates;
  std::uint64_t fault_horizon = 1'000'000;
  bool with_recovery = true;
};

struct RecoveryTrial {
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  bool stabilized = false;
  /// Injected faults (reset-wave writes by the recovery layer excluded).
  std::uint32_t faults_applied = 0;
  /// Reset waves the RecoveryManager started (0 without recovery).
  std::uint32_t waves = 0;
  std::uint32_t final_population = 0;
  /// Interactions from the last injected fault to stabilization (0 if the
  /// trial saw no fault or never stabilized).
  std::uint64_t rebalance_interactions = 0;
  /// max - min over the final committed group sizes (#g_x); <= 1 iff the
  /// final partition is uniform.
  std::uint32_t final_spread = 0;
  /// Lemma 1 evaluated on the final (epoch-projected) configuration.
  bool lemma1_ok = false;
};

struct RecoveryResult {
  pp::GroupId k = 0;
  std::uint32_t n = 0;
  std::vector<RecoveryTrial> trials;
  /// Fraction of trials that re-stabilized within the budget.
  double recovered_fraction = 0.0;
  /// Over recovered trials that saw >= 1 fault: time-to-rebalance.
  Summary rebalance;
  /// Over all trials: final spread.
  Summary spread;
  double wall_seconds = 0.0;
};

/// Runs the fault-injection experiment for one (n, k) point.  Trials are
/// deterministic functions of (master_seed, trial index) regardless of
/// thread count.
RecoveryResult measure_recovery(pp::GroupId k, std::uint32_t n,
                                const RecoveryOptions& options);

}  // namespace ppk::analysis
