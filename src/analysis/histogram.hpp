// Fixed-width histogram for stabilization-time distributions.  The paper
// reports only means; the distribution bench uses this to show the heavy
// right tail behind them (a few unlucky executions dominate the average).

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace ppk::analysis {

class Histogram {
 public:
  /// Buckets [lo, hi) split evenly `buckets` ways; values outside the
  /// range land in saturated edge buckets.
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    PPK_EXPECTS(hi > lo);
    PPK_EXPECTS(buckets >= 1);
  }

  /// Convenience: bounds from data, with `buckets` bins.
  static Histogram from_samples(const std::vector<double>& samples,
                                std::size_t buckets) {
    PPK_EXPECTS(!samples.empty());
    double lo = samples[0];
    double hi = samples[0];
    for (double x : samples) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi == lo) hi = lo + 1.0;
    Histogram histogram(lo, hi * (1.0 + 1e-9), buckets);
    for (double x : samples) histogram.add(x);
    return histogram;
  }

  void add(double x) {
    const double clamped = std::min(std::max(x, lo_), hi_);
    auto bucket = static_cast<std::size_t>(
        (clamped - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    bucket = std::min(bucket, counts_.size() - 1);
    ++counts_[bucket];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  [[nodiscard]] double bucket_lo(std::size_t bucket) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                     static_cast<double>(counts_.size());
  }

  [[nodiscard]] double bucket_hi(std::size_t bucket) const {
    return bucket_lo(bucket + 1);
  }

  /// ASCII rendering: one row per bucket, bar length proportional to the
  /// count, `width` characters for the largest bucket.
  void print(std::ostream& out, std::size_t width = 50) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      const auto bar = static_cast<std::size_t>(
          static_cast<double>(counts_[b]) / static_cast<double>(peak) *
          static_cast<double>(width));
      out << format_bound(bucket_lo(b)) << " .. " << format_bound(bucket_hi(b))
          << "  " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
    }
  }

 private:
  static std::string format_bound(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%12.0f", value);
    return buffer;
  }

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ppk::analysis
