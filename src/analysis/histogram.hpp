// Fixed-width histogram for stabilization-time distributions.  The paper
// reports only means; the distribution bench uses this to show the heavy
// right tail behind them (a few unlucky executions dominate the average).
//
// This is a facade: the bucketing implementation lives in obs/metrics.hpp
// (obs::Histogram, linear layout), the repo's single histogram engine --
// one place for bucket arithmetic, saturation, merging and rendering.
// This wrapper pins the analysis-facing API (ctor + from_samples over
// doubles) that the distribution benches and tests use.

#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ppk::analysis {

class Histogram {
 public:
  /// Buckets [lo, hi) split evenly `buckets` ways; values outside the
  /// range land in saturated edge buckets.
  Histogram(double lo, double hi, std::size_t buckets)
      : impl_(obs::Histogram::linear(lo, hi, buckets)) {}

  /// Convenience: bounds from data, with `buckets` bins.
  static Histogram from_samples(const std::vector<double>& samples,
                                std::size_t buckets) {
    PPK_EXPECTS(!samples.empty());
    double lo = samples[0];
    double hi = samples[0];
    for (double x : samples) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi == lo) hi = lo + 1.0;
    Histogram histogram(lo, hi * (1.0 + 1e-9), buckets);
    for (double x : samples) histogram.add(x);
    return histogram;
  }

  void add(double x) { impl_.add(x); }

  [[nodiscard]] std::uint64_t total() const noexcept { return impl_.total(); }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return impl_.counts();
  }

  [[nodiscard]] double bucket_lo(std::size_t bucket) const {
    return impl_.bucket_lo(bucket);
  }

  [[nodiscard]] double bucket_hi(std::size_t bucket) const {
    return impl_.bucket_hi(bucket);
  }

  /// ASCII rendering: one row per bucket, bar length proportional to the
  /// count, `width` characters for the largest bucket.
  void print(std::ostream& out, std::size_t width = 50) const {
    impl_.print(out, width);
  }

 private:
  obs::Histogram impl_;
};

}  // namespace ppk::analysis
