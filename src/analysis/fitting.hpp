// Least-squares fits used to turn the paper's qualitative shape claims
// into numbers:
//
//  - power-law fit  y = a * x^b      (linear LS on log x, log y):
//    Figure 5's "more than linearly but less than exponentially" becomes
//    a fitted exponent b in (1, ~2.5) with high R^2 on log-log axes.
//
//  - exponential fit  y = a * r^x    (linear LS on x, log y):
//    Figure 6's "exponentially with k" becomes a fitted ratio r > 1 with
//    high R^2 on semi-log axes.

#pragma once

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace ppk::analysis {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares of y against x.  Needs >= 2 points with
/// non-constant x.
inline LinearFit fit_linear(const std::vector<double>& x,
                            const std::vector<double>& y) {
  PPK_EXPECTS(x.size() == y.size());
  PPK_EXPECTS(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denominator = n * sxx - sx * sx;
  PPK_EXPECTS(denominator != 0.0);  // x must not be constant
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denominator;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_total = syy - sy * sy / n;
  double ss_residual = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double predicted = fit.slope * x[i] + fit.intercept;
    ss_residual += (y[i] - predicted) * (y[i] - predicted);
  }
  fit.r_squared = ss_total > 0.0 ? 1.0 - ss_residual / ss_total : 1.0;
  return fit;
}

struct PowerLawFit {
  double exponent = 0.0;     // b in y = a * x^b
  double coefficient = 0.0;  // a
  double r_squared = 0.0;    // of the log-log regression
};

/// Fits y = a * x^b; all samples must be strictly positive.
inline PowerLawFit fit_power_law(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  PPK_EXPECTS(x.size() == y.size());
  std::vector<double> log_x;
  std::vector<double> log_y;
  log_x.reserve(x.size());
  log_y.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PPK_EXPECTS(x[i] > 0.0 && y[i] > 0.0);
    log_x.push_back(std::log(x[i]));
    log_y.push_back(std::log(y[i]));
  }
  const LinearFit linear = fit_linear(log_x, log_y);
  PowerLawFit fit;
  fit.exponent = linear.slope;
  fit.coefficient = std::exp(linear.intercept);
  fit.r_squared = linear.r_squared;
  return fit;
}

struct ExponentialFit {
  double ratio = 0.0;        // r in y = a * r^x
  double coefficient = 0.0;  // a
  double r_squared = 0.0;    // of the semi-log regression
};

/// Fits y = a * r^x; y must be strictly positive.
inline ExponentialFit fit_exponential(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  PPK_EXPECTS(x.size() == y.size());
  std::vector<double> log_y;
  log_y.reserve(y.size());
  for (double v : y) {
    PPK_EXPECTS(v > 0.0);
    log_y.push_back(std::log(v));
  }
  const LinearFit linear = fit_linear(x, log_y);
  ExponentialFit fit;
  fit.ratio = std::exp(linear.slope);
  fit.coefficient = std::exp(linear.intercept);
  fit.r_squared = linear.r_squared;
  return fit;
}

}  // namespace ppk::analysis
