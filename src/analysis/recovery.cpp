#include "analysis/recovery.hpp"

#include <algorithm>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recovery.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ppk::analysis {

namespace {

/// Stream index 2 for the schedule; the ChurnSimulator itself consumes
/// streams 0 (pairs) and 1 (fault resolution) of the same trial seed.
constexpr std::uint64_t kScheduleStream = 2;

void finish_trial(const core::KPartitionProtocol& base,
                  const pp::Counts& base_counts, const pp::FaultTrace& trace,
                  RecoveryTrial* out) {
  std::uint64_t last_fault_at = 0;
  for (const pp::FaultRecord& rec : trace) {
    if (rec.kind == pp::FaultKind::kReset) continue;
    ++out->faults_applied;
    last_fault_at = std::max(last_fault_at, rec.at);
  }
  if (out->stabilized && out->faults_applied > 0) {
    out->rebalance_interactions = out->interactions - last_fault_at;
  }

  std::vector<std::uint64_t> g_sizes(base.k(), 0);
  for (pp::GroupId x = 1; x <= base.k(); ++x) {
    g_sizes[static_cast<std::size_t>(x) - 1] = base_counts[base.g(x)];
  }
  const auto [lo, hi] = std::minmax_element(g_sizes.begin(), g_sizes.end());
  out->final_spread = static_cast<std::uint32_t>(*hi - *lo);
  out->lemma1_ok = core::lemma1_holds(base, base_counts);
}

RecoveryTrial run_with_recovery(pp::GroupId k, std::uint32_t n,
                                const RecoveryOptions& options,
                                std::uint64_t seed) {
  const core::SelfHealingKPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  pp::ChurnSimulator sim(table, pp::Population(initial), seed);
  sim.set_schedule(pp::make_fault_schedule(
      options.rates, options.fault_horizon,
      derive_stream_seed(seed, kScheduleStream)));
  core::RecoveryManager manager(protocol, sim);

  const pp::SimResult r = sim.run(manager.oracle(), options.max_interactions);

  RecoveryTrial out;
  out.interactions = r.interactions;
  out.effective = r.effective;
  out.stabilized = r.stabilized;
  out.waves = manager.waves_started();
  out.final_population = sim.population().size();

  // Project the epoch-stamped configuration onto base states; at stability
  // every agent carries one epoch, so the projection is exact.
  const pp::Counts& counts = sim.population().counts();
  pp::Counts base_counts(protocol.base().num_states(), 0);
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    base_counts[protocol.base_of(s)] += counts[s];
  }
  finish_trial(protocol.base(), base_counts, sim.trace(), &out);
  return out;
}

RecoveryTrial run_without_recovery(pp::GroupId k, std::uint32_t n,
                                   const RecoveryOptions& options,
                                   std::uint64_t seed) {
  const core::KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);
  pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  pp::ChurnSimulator sim(table, pp::Population(initial), seed);
  sim.set_default_join_state(protocol.initial_state());
  sim.set_schedule(pp::make_fault_schedule(
      options.rates, options.fault_horizon,
      derive_stream_seed(seed, kScheduleStream)));
  const auto oracle = core::churn_aware_stable_oracle(protocol);

  const pp::SimResult r = sim.run(*oracle, options.max_interactions);

  RecoveryTrial out;
  out.interactions = r.interactions;
  out.effective = r.effective;
  out.stabilized = r.stabilized;
  out.final_population = sim.population().size();
  finish_trial(protocol, sim.population().counts(), sim.trace(), &out);
  return out;
}

}  // namespace

RecoveryResult measure_recovery(pp::GroupId k, std::uint32_t n,
                                const RecoveryOptions& options) {
  PPK_EXPECTS(n >= 3);
  PPK_EXPECTS(options.trials > 0);

  RecoveryResult result;
  result.k = k;
  result.n = n;
  result.trials.resize(options.trials);

  Stopwatch timer;
  auto body = [&](std::size_t trial) {
    const std::uint64_t seed = derive_stream_seed(options.master_seed, trial);
    result.trials[trial] = options.with_recovery
                               ? run_with_recovery(k, n, options, seed)
                               : run_without_recovery(k, n, options, seed);
  };
  if (options.threads == 1 || options.trials == 1) {
    for (std::size_t t = 0; t < options.trials; ++t) body(t);
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for_index(options.trials, body);
  }
  result.wall_seconds = timer.seconds();

  std::uint32_t recovered = 0;
  std::vector<double> rebalance;
  std::vector<double> spread;
  spread.reserve(result.trials.size());
  for (const RecoveryTrial& t : result.trials) {
    if (t.stabilized) ++recovered;
    if (t.stabilized && t.faults_applied > 0) {
      rebalance.push_back(static_cast<double>(t.rebalance_interactions));
    }
    spread.push_back(static_cast<double>(t.final_spread));
  }
  result.recovered_fraction =
      static_cast<double>(recovered) / static_cast<double>(options.trials);
  result.rebalance = summarize(rebalance);
  result.spread = summarize(spread);
  return result;
}

}  // namespace ppk::analysis
