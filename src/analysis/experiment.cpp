#include "analysis/experiment.hpp"

#include "core/invariants.hpp"
#include "pp/transition_table.hpp"
#include "util/stopwatch.hpp"

namespace ppk::analysis {

ExperimentResult measure_kpartition(pp::GroupId k, std::uint32_t n,
                                    const ExperimentOptions& options) {
  PPK_EXPECTS(n >= 3);  // the paper's standing assumption
  const core::KPartitionProtocol protocol(k);
  const pp::TransitionTable table(protocol);

  pp::MonteCarloOptions mc;
  mc.trials = options.trials;
  mc.master_seed = options.master_seed;
  mc.max_interactions = options.max_interactions;
  mc.engine = options.engine;
  mc.threads = options.threads;
  mc.metrics = options.metrics;
  if (options.track_groupings) mc.watch_state = protocol.g(k);

  Stopwatch timer;
  const pp::MonteCarloResult result = pp::run_monte_carlo(
      protocol, table, n,
      [&] { return core::stable_pattern_oracle(protocol, n); }, mc);

  ExperimentResult out;
  out.k = k;
  out.n = n;
  out.trials = options.trials;
  out.stabilized = result.stabilized_count();
  out.wall_seconds = timer.seconds();

  std::vector<double> interactions;
  std::vector<double> effective;
  interactions.reserve(result.trials.size());
  effective.reserve(result.trials.size());
  for (const auto& trial : result.trials) {
    interactions.push_back(static_cast<double>(trial.interactions));
    effective.push_back(static_cast<double>(trial.effective));
  }
  out.interactions = summarize(interactions);
  out.effective = summarize(effective);

  if (options.track_groupings) {
    out.breakdown = grouping_breakdown(result);
  }
  return out;
}

}  // namespace ppk::analysis
