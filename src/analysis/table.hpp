// Aligned console tables: the benches print the same rows they write to
// CSV, so a terminal run of a figure binary is self-contained.

#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace ppk::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {
    PPK_EXPECTS(!header_.empty());
  }

  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    PPK_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
      for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
    }
    print_row(out, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(out, row, widths);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      // Small magnitudes (rates, ratios) keep three decimals; large ones
      // (interaction counts) keep one.
      std::ostringstream cell;
      const double magnitude = value < 0 ? -value : value;
      cell << std::fixed << std::setprecision(magnitude < 10.0 ? 3 : 1)
           << value;
      return cell.str();
    } else {
      std::ostringstream cell;
      cell << value;
      return cell.str();
    }
  }

  static void print_row(std::ostream& out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c] << "  ";
    }
    out << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppk::analysis
