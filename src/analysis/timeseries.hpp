// Trajectory recording: state counts sampled along an execution, for
// convergence-profile plots and for examples that show the population
// reorganizing after a disturbance.

#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "util/assert.hpp"

namespace ppk::analysis {

class TimeSeries {
 public:
  /// Samples every `stride` interactions (plus whenever sample() is called
  /// explicitly with force = true).
  TimeSeries(const pp::Protocol& protocol, std::uint64_t stride)
      : protocol_(&protocol), stride_(stride) {
    PPK_EXPECTS(stride >= 1);
  }

  /// Records group sizes at `interaction` if it falls on the stride grid.
  void sample(std::uint64_t interaction, const pp::Population& population,
              bool force = false) {
    if (!force && interaction % stride_ != 0) return;
    Row row;
    row.interaction = interaction;
    row.group_sizes = population.group_sizes(*protocol_);
    rows_.push_back(std::move(row));
  }

  struct Row {
    std::uint64_t interaction = 0;
    std::vector<std::uint32_t> group_sizes;
  };

  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Writes "interaction,group1,group2,..." rows.
  void write_csv(std::ostream& out) const {
    std::vector<std::string> header{"interaction"};
    for (pp::GroupId g = 0; g < protocol_->num_groups(); ++g) {
      header.push_back("group" + std::to_string(g + 1));
    }
    io::CsvWriter csv(out, header);
    for (const Row& row : rows_) {
      std::vector<std::string> cells{std::to_string(row.interaction)};
      for (auto size : row.group_sizes) cells.push_back(std::to_string(size));
      write_row(csv, cells);
    }
  }

  /// Largest group-size spread (max - min) seen over the whole trajectory
  /// from `from_interaction` on -- used to assert "never became non-uniform
  /// again after stabilizing".
  [[nodiscard]] std::uint32_t max_spread_since(
      std::uint64_t from_interaction) const {
    std::uint32_t worst = 0;
    for (const Row& row : rows_) {
      if (row.interaction < from_interaction) continue;
      std::uint32_t lo = UINT32_MAX;
      std::uint32_t hi = 0;
      for (auto size : row.group_sizes) {
        lo = size < lo ? size : lo;
        hi = size > hi ? size : hi;
      }
      if (!row.group_sizes.empty()) worst = std::max(worst, hi - lo);
    }
    return worst;
  }

 private:
  static void write_row(io::CsvWriter& csv,
                        const std::vector<std::string>& cells) {
    // CsvWriter::row is variadic (compile-time width); trajectories have a
    // run-time column count, so join the escape-free numeric cells by hand.
    std::string joined;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) joined += ',';
      joined += cells[i];
    }
    csv.raw_row(joined, cells.size());
  }

  const pp::Protocol* protocol_;
  std::uint64_t stride_;
  std::vector<Row> rows_;
};

}  // namespace ppk::analysis
