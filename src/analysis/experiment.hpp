// The repeated experiment of the paper's Section 5, packaged: run the
// uniform k-partition protocol on n agents for a number of trials and
// report interaction statistics.  All figure benches are thin sweeps over
// this function.

#pragma once

#include <cstdint>

#include "analysis/grouping_tracker.hpp"
#include "analysis/stats.hpp"
#include "core/kpartition.hpp"
#include "pp/monte_carlo.hpp"

namespace ppk::analysis {

struct ExperimentOptions {
  std::uint32_t trials = 100;  // the paper's setting
  std::uint64_t master_seed = 0x5EEDULL;
  std::uint64_t max_interactions = pp::kDefaultInteractionBudget;
  pp::Engine engine = pp::Engine::kAgentArray;
  std::size_t threads = 1;
  bool track_groupings = false;  // record g_k entries for Figure 4
  /// If non-null, aggregate metrics across all trials are merged into this
  /// registry (see pp::MonteCarloOptions::metrics).  Must outlive the call.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ExperimentResult {
  pp::GroupId k = 0;
  std::uint32_t n = 0;
  Summary interactions;   // over trials, total interactions to stability
  Summary effective;      // over trials, effective interactions
  std::uint32_t trials = 0;
  std::uint32_t stabilized = 0;  // trials that reached the stable pattern
  double wall_seconds = 0.0;
  /// Populated iff track_groupings (Figure 4's NI'_i means and tail).
  GroupingBreakdown breakdown;
};

/// Runs the paper's experiment for one (n, k) point.
ExperimentResult measure_kpartition(pp::GroupId k, std::uint32_t n,
                                    const ExperimentOptions& options);

}  // namespace ppk::analysis
