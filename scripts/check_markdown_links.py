#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Scans markdown files for inline links and images, and verifies that every
relative link resolves: the target file exists, and, when the link carries
a `#fragment`, that the target contains a heading whose GitHub-style slug
matches.  External links (http/https/mailto) are not fetched -- this gate
protects the cross-reference structure of the docs, not the internet.

Usage:
  scripts/check_markdown_links.py [FILE_OR_DIR...]

With no arguments, checks README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
CHANGES.md and every *.md under docs/.  Exits non-zero listing every broken
link.  Stdlib only.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def default_targets():
    targets = [REPO / name for name in
               ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                "CHANGES.md")]
    targets += sorted((REPO / "docs").glob("*.md"))
    return [t for t in targets if t.exists()]


def slugify(heading):
    """GitHub's anchor algorithm, close enough: lowercase, drop anything
    but word characters, spaces and hyphens, then hyphenate spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path):
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            yield number, m.group(1)


def check_file(path):
    failures = []
    for number, target in iter_links(path):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        if target.startswith("#"):
            if target[1:] not in heading_slugs(path):
                failures.append((number, target, "no such heading anchor"))
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            failures.append((number, target, "target does not exist"))
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved):
                failures.append((number, target,
                                 f"no heading '#{fragment}' in {raw}"))
    return failures


def main(argv):
    args = [Path(a) for a in argv[1:]]
    files = []
    for arg in args:
        if arg.is_dir():
            files += sorted(arg.rglob("*.md"))
        else:
            files.append(arg)
    if not files:
        files = default_targets()

    broken = 0
    for path in files:
        if not path.exists():
            print(f"FAIL: {path}: no such file", file=sys.stderr)
            broken += 1
            continue
        for number, target, reason in check_file(path):
            rel = path.relative_to(REPO) if path.is_relative_to(REPO) else path
            print(f"FAIL: {rel}:{number}: broken link '{target}' ({reason})",
                  file=sys.stderr)
            broken += 1
    if broken:
        print(f"{broken} broken link(s)", file=sys.stderr)
        return 1
    print(f"markdown links ok: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
