#!/usr/bin/env python3
"""SIGKILL crash-resume integration test for the campaign runner.

Runs `campaign_cli` (tests/campaign_cli_main.cpp) three ways and demands
byte-identical reports:

  1. Uninterrupted, single-threaded (the reference).
  2. Uninterrupted at a higher thread count (merge order must not matter).
  3. Killed with SIGKILL at randomized points and resumed from its
     checkpoint until it exits complete -- at both thread counts.

SIGKILL cannot be caught, so this exercises the real crash contract: the
atomic checkpoint (write-temp-then-rename) is either the old state or the
new state, never a torn file, and no completed trial is ever lost or
recomputed differently.  The kill schedule is drawn from a seeded RNG so
failures reproduce with --seed.

Usage:
  scripts/test_crash_resume.py --cli build/tests/campaign_cli [--quick]
"""

import argparse
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import time


def run_campaign(cli, workdir, tag, threads, config, kill_after=None):
    """One campaign_cli invocation; returns (returncode, killed)."""
    out = workdir / f"report-{tag}.json"
    ckpt = workdir / f"ckpt-{tag}.json"
    cmd = [
        str(cli),
        "--trials", str(config["trials"]),
        "--seed", str(config["seed"]),
        "--n", str(config["n"]),
        "--k", str(config["k"]),
        "--engine", config["engine"],
        "--budget", str(config["budget"]),
        "--chunk", str(config["chunk"]),
        "--checkpoint-every", "1",
        "--checkpoint", str(ckpt),
        "--threads", str(threads),
        "--out", str(out),
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)
    if kill_after is None:
        return proc.wait(), False
    time.sleep(kill_after)
    if proc.poll() is not None:
        return proc.returncode, False
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    return proc.returncode, True


def report_bytes(workdir, tag):
    return (workdir / f"report-{tag}.json").read_bytes()


def complete_with_kills(cli, workdir, tag, threads, config, rng, max_runs):
    """Kill/resume until campaign_cli exits 0; returns the kill count."""
    kills = 0
    for attempt in range(max_runs):
        # Bias early: most kills land mid-campaign, the tail lets it finish.
        kill_after = rng.uniform(0.02, 0.35) if attempt < max_runs - 1 else None
        code, killed = run_campaign(cli, workdir, tag, threads, config,
                                    kill_after)
        if killed:
            kills += 1
            continue
        if code == 0:
            return kills
        raise SystemExit(
            f"FAIL: {tag}: campaign_cli exited {code} on resume "
            f"(attempt {attempt}, {kills} kill(s) so far)")
    raise SystemExit(f"FAIL: {tag}: campaign did not complete in "
                     f"{max_runs} runs")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True,
                        help="path to the campaign_cli binary")
    parser.add_argument("--seed", type=int, default=20260808,
                        help="kill-schedule RNG seed")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized configuration (~seconds)")
    parser.add_argument("--engine", default="count",
                        help="engine to drive (default: count)")
    args = parser.parse_args()

    cli = pathlib.Path(args.cli)
    if not cli.exists():
        raise SystemExit(f"no such binary: {cli}")

    # Sized so the single-threaded reference takes on the order of a
    # second: long enough that the randomized kills reliably land
    # mid-campaign, short enough for a PR gate.
    config = {
        "trials": 24 if args.quick else 48,
        "seed": 4242,
        "n": 400 if args.quick else 800,
        "k": 4,
        "engine": args.engine,
        "budget": 40_000_000,
        # Small chunks: many checkpoint opportunities per trial, so SIGKILL
        # lands mid-trial often and resume restores from engine snapshots.
        "chunk": 4096,
    }
    rng = random.Random(args.seed)
    thread_counts = [1, 4]
    max_runs = 40

    with tempfile.TemporaryDirectory(prefix="ppk-crash-resume-") as tmp:
        workdir = pathlib.Path(tmp)

        code, _ = run_campaign(cli, workdir, "ref", 1, config)
        if code != 0:
            raise SystemExit(f"FAIL: reference run exited {code}")
        reference = report_bytes(workdir, "ref")
        print(f"reference: {config['trials']} trials, "
              f"{len(reference)} byte report")

        total_kills = 0
        for threads in thread_counts:
            tag = f"t{threads}"
            code, _ = run_campaign(cli, workdir, tag, threads, config)
            if code != 0:
                raise SystemExit(f"FAIL: threads={threads} run exited {code}")
            if report_bytes(workdir, tag) != reference:
                raise SystemExit(
                    f"FAIL: uninterrupted threads={threads} report differs "
                    "from the reference")
            print(f"threads={threads}: uninterrupted report bit-identical")

            tag = f"kill-t{threads}"
            kills = complete_with_kills(cli, workdir, tag, threads, config,
                                        rng, max_runs)
            total_kills += kills
            if report_bytes(workdir, tag) != reference:
                raise SystemExit(
                    f"FAIL: threads={threads} report differs after "
                    f"{kills} SIGKILL(s) + resume")
            print(f"threads={threads}: report bit-identical after "
                  f"{kills} SIGKILL(s)")

        if total_kills == 0:
            raise SystemExit(
                "FAIL: no run was ever killed mid-campaign -- the "
                "configuration finishes too fast to test anything; grow "
                "--trials/--budget or shrink the kill delays")
    print("OK: crash-resume reports bit-identical across kills and "
          "thread counts")


if __name__ == "__main__":
    main()
