#!/usr/bin/env bash
# Runs the gated benchmarks and writes their machine-readable reports at
# the repo root:
#
#   BENCH_ENGINES.json   (bench/batch_throughput,     ppk-bench-engines-v2)
#   BENCH_TOPOLOGY.json  (bench/topology_sensitivity, ppk-bench-topology-v1)
#   BENCH_FAIRNESS.json  (bench/fairness_matrix,      ppk-bench-fairness-v1)
#   BENCH_EXACT.json     (bench/exact_vs_monte_carlo, ppk-bench-exact-v1)
#
# The engines report covers the {n, k} throughput grid for all five
# engines (agent/count/jump/batch/sharded), the sampler-setup
# amortization numbers, and the sharded_scale deep-trial block (n = 1e8
# full, 4e6 smoke) whose verdict fingerprints pin the sharded engine's
# bit-determinism across worker counts 1/2/4/8.
#
# Usage:
#   scripts/run_benchmarks.sh [--smoke]
#                             [--only engines|topology|fairness|exact|serve]
#                             [--reps N] [--build-dir DIR]
#                             [--out FILE] [--topology-out FILE]
#                             [--fairness-out FILE] [--exact-out FILE]
#
#   --smoke         small grids + short budgets (CI-sized, ~seconds)
#   --only WHICH    run just one report (default: both); 'serve' runs the
#                   ppkd end-to-end smoke (scripts/ppkd_smoke.py) instead
#                   of a benchmark -- no JSON report, pass/fail only
#   --reps N        measurements per point, best figure kept (default 1;
#                   use >= 3 when regenerating a committed baseline)
#   --build-dir     build tree holding the bench binaries
#                   (default: ./build, configured+built if missing)
#   --out           engines JSON path (default: BENCH_ENGINES.json)
#   --topology-out  topology JSON path (default: BENCH_TOPOLOGY.json)
#   --fairness-out  fairness JSON path (default: BENCH_FAIRNESS.json)
#   --exact-out     exact JSON path (default: BENCH_EXACT.json)
#
# The fairness report gates interaction COUNTS, not wall-clock times, so
# --reps does not apply to it and any machine can regenerate the
# complete-graph rows bit-identically (live-edge rows are libm-specific).
# The exact report gates solver answers and configuration counts -- also
# machine-independent, so --reps does not apply to it either; --smoke only
# shrinks its ungated Monte-Carlo cross-check.
#
# The committed reports are the regression baselines checked by
# scripts/check_bench_regression.py; regenerate them with a full
# (non-smoke) run on a quiet machine.
#
# Both benches write their JSON atomically (temp + rename) and latch
# SIGINT, so Ctrl-C here finishes the in-flight point, flushes a complete
# report flagged "interrupted": true, and exits 130 (which aborts this
# script before it announces the report as written).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out="${repo_root}/BENCH_ENGINES.json"
topology_out="${repo_root}/BENCH_TOPOLOGY.json"
fairness_out="${repo_root}/BENCH_FAIRNESS.json"
exact_out="${repo_root}/BENCH_EXACT.json"
smoke=""
reps="1"
only="both"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --only) only="$2"; shift 2 ;;
    --reps) reps="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --topology-out) topology_out="$2"; shift 2 ;;
    --fairness-out) fairness_out="$2"; shift 2 ;;
    --exact-out) exact_out="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done
case "${only}" in
  both|engines|topology|fairness|exact|serve) ;;
  *) echo "--only must be 'engines', 'topology', 'fairness', 'exact' or" \
          "'serve', got '${only}'" >&2
     exit 2 ;;
esac

ensure_built() {
  local bench="$1"
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "== ${bench} not built; configuring ${build_dir} (Release) =="
    cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
    cmake --build "${build_dir}" --target "${bench}"
  fi
}

git_rev="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

if [[ "${only}" == "both" || "${only}" == "engines" ]]; then
  ensure_built batch_throughput
  "${build_dir}/bench/batch_throughput" ${smoke} --reps "${reps}" \
    --json "${out}" --git-rev "${git_rev}"
  echo "== wrote ${out} (git ${git_rev}) =="
fi

if [[ "${only}" == "both" || "${only}" == "topology" ]]; then
  ensure_built topology_sensitivity
  # --threads 0 = one worker per hardware core: the sweep's per-draw rows
  # burn their budget on every wedged trial, so they parallelize well.
  "${build_dir}/bench/topology_sensitivity" ${smoke} --reps "${reps}" \
    --threads 0 --json "${topology_out}" --git-rev "${git_rev}"
  echo "== wrote ${topology_out} (git ${git_rev}) =="
fi

if [[ "${only}" == "both" || "${only}" == "fairness" ]]; then
  ensure_built fairness_matrix
  # --threads 0 = one worker per hardware core: the livelock rows (the
  # negative controls) burn their full interaction budget every trial and
  # parallelize perfectly.  No --reps: every gated figure is an
  # interaction count, not a time, so one measurement is exact.
  "${build_dir}/bench/fairness_matrix" ${smoke} --threads 0 \
    --json "${fairness_out}" --git-rev "${git_rev}"
  echo "== wrote ${fairness_out} (git ${git_rev}) =="
fi

if [[ "${only}" == "both" || "${only}" == "exact" ]]; then
  ensure_built exact_vs_monte_carlo
  # No --reps and no --threads: every gated figure is an exact solver
  # answer or a configuration count, so one single-threaded run suffices
  # on any machine.
  "${build_dir}/bench/exact_vs_monte_carlo" ${smoke} \
    --json "${exact_out}" --git-rev "${git_rev}"
  echo "== wrote ${exact_out} (git ${git_rev}) =="
fi

if [[ "${only}" == "serve" ]]; then
  # The daemon binaries live under tests/, not bench/.
  if [[ ! -x "${build_dir}/tests/ppkd" ]]; then
    echo "== ppkd not built; configuring ${build_dir} (Release) =="
    cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
    cmake --build "${build_dir}" --target ppkd --target conformance_fuzz
  fi
  python3 "${repo_root}/scripts/ppkd_smoke.py" \
    --daemon "${build_dir}/tests/ppkd" \
    --fuzz "${build_dir}/tests/conformance_fuzz" \
    ${smoke:+--quick}
  echo "== ppkd smoke passed =="
fi
