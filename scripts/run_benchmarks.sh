#!/usr/bin/env bash
# Runs the engine-throughput benchmark and writes the machine-readable
# report BENCH_ENGINES.json at the repo root (schema ppk-bench-engines-v1).
#
# Usage:
#   scripts/run_benchmarks.sh [--smoke] [--build-dir DIR] [--out FILE]
#
#   --smoke       small grid + short wall caps (CI-sized, ~seconds)
#   --reps N      measurements per point, best rate kept (default 1;
#                 use >= 3 when regenerating the committed baseline)
#   --build-dir   build tree holding bench/batch_throughput
#                 (default: ./build, configured+built if missing)
#   --out         output JSON path (default: BENCH_ENGINES.json)
#
# The committed BENCH_ENGINES.json is the regression baseline checked by
# scripts/check_bench_regression.py; regenerate it with a full (non-smoke)
# run on a quiet machine.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out="${repo_root}/BENCH_ENGINES.json"
smoke=""
reps="1"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --reps) reps="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

bench="${build_dir}/bench/batch_throughput"
if [[ ! -x "${bench}" ]]; then
  echo "== batch_throughput not built; configuring ${build_dir} (Release) =="
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target batch_throughput
fi

git_rev="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

"${bench}" ${smoke} --reps "${reps}" --json "${out}" --git-rev "${git_rev}"
echo "== wrote ${out} (git ${git_rev}) =="
