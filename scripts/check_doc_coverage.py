#!/usr/bin/env python3
"""Documentation-coverage gate for the observability layer's public API.

Walks the public headers of src/obs/ plus src/pp/stability.hpp (the
on_batch contract the timeline sampling semantics rest on) and fails if
any public symbol -- a namespace-scope class/struct/enum/alias/constant,
a free function, or a public member declaration -- is not immediately
preceded by a comment.  The repo documents public APIs with Doxygen-style
`///` comments; scripts/build_docs.sh runs this gate even when doxygen
itself is not installed, so undocumented symbols fail fast everywhere.

The parser is a line-oriented heuristic, not a C++ front end: it tracks
brace depth and access sections, treats `private:`/`protected:` members
and function bodies as exempt, and accepts any comment line (`///`, `//`,
or a `/* ... */` block end) directly above a declaration.  That is exactly
strict enough to keep the public surface documented without fighting the
language.

Usage:
  scripts/check_doc_coverage.py [HEADER...]

With no arguments, checks src/obs/*.hpp, src/pp/stability.hpp,
src/core/campaign.hpp, the fairness axis (src/pp/fairness.hpp,
src/pp/adversarial.hpp), the two protocol families it carries
(src/core/weak_kpartition.hpp, src/core/graph_bipartition.hpp), and the
per-agent verifier behind them (src/verify/agent_graph.hpp,
src/verify/weak_fairness.hpp), and the scenario-server surface
(src/serve/scenario.hpp, src/serve/cache.hpp, src/serve/server.hpp).
Exits non-zero listing every undocumented symbol.  Stdlib only.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = sorted((REPO / "src" / "obs").glob("*.hpp")) + [
    REPO / "src" / "pp" / "stability.hpp",
    REPO / "src" / "core" / "campaign.hpp",
    # The fairness-policy axis and the protocol families riding on it.
    REPO / "src" / "pp" / "fairness.hpp",
    REPO / "src" / "pp" / "adversarial.hpp",
    REPO / "src" / "core" / "weak_kpartition.hpp",
    REPO / "src" / "core" / "graph_bipartition.hpp",
    REPO / "src" / "verify" / "agent_graph.hpp",
    REPO / "src" / "verify" / "weak_fairness.hpp",
    # The exact-analysis back end (docs/exact.md).
    REPO / "src" / "pp" / "symmetry.hpp",
    REPO / "src" / "util" / "csr.hpp",
    REPO / "src" / "verify" / "lumped_markov.hpp",
    # The scenario-server surface (docs/ppkd.md).
    REPO / "src" / "serve" / "scenario.hpp",
    REPO / "src" / "serve" / "cache.hpp",
    REPO / "src" / "serve" / "server.hpp",
]

# Lines that introduce a documentable symbol.  Matched against a line with
# leading whitespace stripped, outside function bodies, in a public region.
DECLARATION = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(?:class|struct|enum\s+class|enum)\s+(?!.*;$)(\w+)"
    r"|^using\s+(\w+)\s*="
    r"|^(?:inline\s+)?constexpr\s+[\w:<>,\s]+?\b(\w+)\s*[={(]"
    r"|^#define\s+(\w+)"
)

# A function/member declaration: return type + name(args).  Requires an
# opening parenthesis and either a terminator on the line or a trailing
# open position (continued signature).
FUNCTION = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|explicit\s+|inline\s+|friend\s+|constexpr\s+)*"
    r"[\w:<>,*&\s\[\]]*?\b([A-Za-z_]\w*)\s*\("
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "static_assert", "defined", "do", "PPK_EXPECTS", "PPK_ENSURES",
    "PPK_ASSERT",
}

SPECIAL_UNDOC_OK = {
    # Compiler-generated-semantics boilerplate nobody documents per line.
    "operator=",
}


def is_comment(line):
    stripped = line.strip()
    return (stripped.startswith("//") or stripped.startswith("*") or
            stripped.startswith("/*") or stripped.endswith("*/"))


def symbol_on_line(stripped):
    """Returns the declared symbol name, or None."""
    m = DECLARATION.match(stripped)
    if m:
        return next(name for name in m.groups() if name)
    m = FUNCTION.match(stripped)
    if m:
        name = m.group(1)
        if name in CONTROL_KEYWORDS or name.isupper():
            return None
        return name
    return None


def check_header(path):
    """Yields (line_number, symbol) for undocumented public symbols."""
    lines = path.read_text().splitlines()
    depth = 0            # brace depth
    # Access rules per class-brace depth: namespaces and structs default
    # public, classes default private.
    access = {}          # depth -> "public" | "private"
    body_depth = None    # depth at which a function body opened
    in_macro = False     # inside a multi-line #define (backslash-continued)
    documented_macros = set()

    prev_meaningful = ""  # previous non-blank line (for comment adjacency)
    continuation = False  # current line continues the previous declaration
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        if in_macro:
            in_macro = stripped.endswith("\\")
            continue
        if is_comment(stripped):
            prev_meaningful = stripped
            continue
        # Conditional-compilation directives are transparent: a comment
        # above an #ifndef still documents the #define inside it.
        if re.match(r"^#\s*(if|ifdef|ifndef|else|elif|endif)", stripped):
            continue

        if stripped in ("public:", "protected:", "private:"):
            access[depth] = stripped[:-1]
            prev_meaningful = stripped
            continuation = False
            continue

        in_body = body_depth is not None and depth > body_depth
        accessible = access.get(depth, "public") == "public"
        # Signatures may wrap; join up to a few continuation lines so
        # trailing `override` / `= delete` markers are visible.
        joined = stripped
        peek = number
        while (not joined.rstrip("\\").rstrip().endswith((";", "{", "}", ":"))
               and peek < len(lines) and peek - number < 5):
            joined += " " + lines[peek].strip()
            peek += 1
        boilerplate = joined.rstrip().endswith(("= delete;", "= default;"))
        inherits_docs = re.search(r"\boverride\b", joined) is not None
        if (not in_body and not continuation and accessible and depth <= 2 and
                not boilerplate and not inherits_docs):
            symbol = symbol_on_line(stripped)
            if symbol and stripped.startswith("#define"):
                # A documented #define documents its other conditional arm.
                if is_comment(prev_meaningful):
                    documented_macros.add(symbol)
                elif symbol not in documented_macros:
                    yield number, symbol
            elif (symbol and not is_comment(prev_meaningful) and
                    symbol not in SPECIAL_UNDOC_OK and
                    not stripped.startswith("}")):
                yield number, symbol

        if stripped.startswith("#define"):
            in_macro = stripped.endswith("\\")
            prev_meaningful = stripped
            continue

        # A declaration continues onto the next line unless this one ends
        # at a natural stopping point.
        continuation = not stripped.endswith((";", "{", "}", ":"))

        # Update structural state AFTER classifying the line.
        m = re.match(r"^(?:template\s*<.*>\s*)?(class|struct)\s+\w+", stripped)
        opens = stripped.count("{") - stripped.count("}")
        if m and "{" in stripped:
            access[depth + 1] = "private" if m.group(1) == "class" else "public"
        elif ("{" in stripped and body_depth is None and
              not stripped.startswith("namespace") and
              not stripped.startswith("enum") and not m):
            # Anything else opening a brace at an observable point is a
            # function body (or initializer) -- skip until it closes.
            body_depth = depth
        depth += opens
        if body_depth is not None and depth <= body_depth:
            body_depth = None
        for gone in [d for d in access if d > depth]:
            del access[gone]
        prev_meaningful = stripped


def main(argv):
    targets = [Path(arg) for arg in argv[1:]] or DEFAULT_TARGETS
    failures = []
    for path in targets:
        if not path.exists():
            print(f"FAIL: {path}: no such header", file=sys.stderr)
            return 1
        for number, symbol in check_header(path):
            failures.append((path, number, symbol))
    if failures:
        for path, number, symbol in failures:
            rel = path.relative_to(REPO) if path.is_relative_to(REPO) else path
            print(f"FAIL: {rel}:{number}: public symbol '{symbol}' has no "
                  f"documentation comment", file=sys.stderr)
        print(f"{len(failures)} undocumented public symbol(s)",
              file=sys.stderr)
        return 1
    print(f"doc coverage ok: {len(targets)} header(s), all public symbols "
          f"documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
