#!/usr/bin/env python3
"""End-to-end smoke test for ppkd, the scenario daemon (docs/ppkd.md).

Three legs, each a hard assertion on daemon behaviour:

  1. Cache hit.  The acceptance scenario (k-partition, n = 1e5,
     epsilon-fair, ring topology) is submitted twice.  The first run must
     stream per-trial frames and a result; the resubmission must be marked
     cached and replay a byte-identical result line.

  2. Scenario <-> fuzzer bridge.  A conformance-mode scenario is submitted
     to the daemon AND the very same spec file is replayed through
     `conformance_fuzz --replay` (when --fuzz is given): one schema, two
     drivers, both conformant.

  3. SIGKILL / resume.  A longer simulate job is killed -- SIGKILL, not a
     graceful shutdown -- mid-run.  The checkpoint must survive, a
     restarted daemon must resume it (resumed: true) and the final result
     frame must byte-match an uninterrupted reference run: no trial lost,
     none recomputed differently.

Usage:
  scripts/ppkd_smoke.py --daemon build/tests/ppkd \\
      [--fuzz build/tests/conformance_fuzz] [--quick]
"""

import argparse
import json
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time


def scenario(**overrides):
    """A ppk-scenario-v1 document with defaults, as a dict."""
    spec = {
        "schema": "ppk-scenario-v1",
        "protocol": "kpartition",
        "k": 3,
        "n": 12,
        "topology": {"kind": "complete", "p": 0.5},
        "fairness": {"policy": "uniform-random", "epsilon": 1.0},
        "oracle": {"kind": "stable-pattern", "window": 262144},
        "engine": "auto",
        "mode": "simulate",
        "trials": 8,
        "seed": 1,
        "budget": 10000000,
        "faults": [],
    }
    spec.update(overrides)
    return spec


class Daemon:
    """One ppkd process plus a client connection to it."""

    def __init__(self, binary, sock_path, state_dir, chunk=1 << 14):
        self.sock_path = str(sock_path)
        self.proc = subprocess.Popen(
            [str(binary), "--socket", self.sock_path,
             "--state-dir", str(state_dir),
             "--chunk", str(chunk), "--checkpoint-every", "1"],
            stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
        self.sock = None
        deadline = time.time() + 20
        while time.time() < deadline:
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(self.sock_path)
                self.sock = s
                break
            except OSError:
                time.sleep(0.05)
        if self.sock is None:
            raise RuntimeError("daemon did not start listening")
        self.reader = self.sock.makefile("r")

    def send(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())

    def read_until(self, events, timeout=240):
        """Reads frames until one whose `event` is in `events`; returns
        (frames, final_frame)."""
        self.sock.settimeout(timeout)
        frames = []
        while True:
            line = self.reader.readline()
            if not line:
                raise RuntimeError("daemon closed the connection")
            frame = json.loads(line)
            frames.append((frame, line.rstrip("\n")))
            if frame.get("event") in events:
                return frames, frame

    def submit(self, job_id, spec, timeout=240):
        self.send({"op": "submit", "id": job_id, "scenario": spec})
        return self.read_until({"result", "incomplete", "error"}, timeout)

    def shutdown(self):
        try:
            self.send({"op": "shutdown"})
            self.read_until({"bye"}, timeout=30)
        except Exception:
            pass
        self.close()
        self.proc.wait(timeout=30)

    def kill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self.close()

    def close(self):
        if self.sock is not None:
            try:
                self.reader.close()
                self.sock.close()
            except OSError:
                pass
            self.sock = None


def result_line(frames):
    lines = [raw for frame, raw in frames if frame.get("event") == "result"]
    assert len(lines) == 1, f"expected one result frame, got {len(lines)}"
    return lines[0]


def leg_cache_hit(args, workdir):
    """Acceptance scenario: stream + cache, resubmit byte-identical."""
    spec = scenario(
        n=100000 if not args.quick else 50000,
        topology={"kind": "ring", "p": 0.5},
        fairness={"policy": "epsilon-fair", "epsilon": 0.5},
        oracle={"kind": "quiescence", "window": 100000},
        trials=2, seed=42, budget=200000)
    d = Daemon(args.daemon, workdir / "hit.sock", workdir / "hit-state")
    try:
        frames, final = d.submit("hit-1", spec)
        assert final["event"] == "result", f"first run failed: {final}"
        accepted = [f for f, _ in frames if f.get("event") == "accepted"]
        assert accepted and accepted[0]["cached"] is False
        trials = [f for f, _ in frames if f.get("event") == "trial"]
        assert len(trials) == spec["trials"], \
            f"streamed {len(trials)} trial frames, wanted {spec['trials']}"
        assert '"metrics"' in result_line(frames)
        first = result_line(frames)

        frames2, final2 = d.submit("hit-2", spec)
        assert final2["event"] == "result"
        accepted2 = [f for f, _ in frames2 if f.get("event") == "accepted"]
        assert accepted2 and accepted2[0]["cached"] is True, \
            "resubmission did not hit the cache"
        assert result_line(frames2) == first, \
            "cache replay is not byte-identical"
        d.shutdown()
    finally:
        if d.proc.poll() is None:
            d.kill()
    print("leg 1 (cache hit): ok")


def leg_fuzz_bridge(args, workdir):
    """One spec file, two drivers: ppkd submit and conformance_fuzz replay."""
    spec = scenario(mode="conformance", k=2, n=8, trials=5, budget=50000,
                    seed=42)
    spec_file = workdir / "case.json"
    spec_file.write_text(json.dumps(spec, indent=2) + "\n")

    d = Daemon(args.daemon, workdir / "conf.sock", workdir / "conf-state")
    try:
        frames, final = d.submit("conf-1", json.loads(spec_file.read_text()))
        assert final["event"] == "result", f"conformance run failed: {final}"
        assert final["ok"] is True, f"divergent: {final}"
        d.shutdown()
    finally:
        if d.proc.poll() is None:
            d.kill()

    if args.fuzz:
        replay = subprocess.run(
            [str(args.fuzz), "--replay", str(spec_file)],
            capture_output=True, text=True, timeout=240)
        assert replay.returncode == 0, \
            f"conformance_fuzz --replay failed:\n{replay.stdout}{replay.stderr}"
        print("leg 2 (scenario <-> fuzz bridge): ok (both drivers)")
    else:
        print("leg 2 (scenario <-> fuzz bridge): ok (daemon only; no --fuzz)")


def leg_kill_resume(args, workdir):
    """SIGKILL mid-job; restart resumes the checkpoint; result bytes match
    an uninterrupted reference."""
    spec = scenario(
        n=20000, engine="agent",
        oracle={"kind": "quiescence", "window": 1 << 62},
        trials=4 if args.quick else 6,
        budget=3000000, seed=7)

    ref_dir = workdir / "ref-state"
    d = Daemon(args.daemon, workdir / "ref.sock", ref_dir)
    try:
        frames, final = d.submit("ref", spec)
        assert final["event"] == "result", f"reference run failed: {final}"
        reference = result_line(frames)
        d.shutdown()
    finally:
        if d.proc.poll() is None:
            d.kill()

    cut_dir = workdir / "cut-state"
    d = Daemon(args.daemon, workdir / "cut.sock", cut_dir)
    killed_midway = False
    try:
        d.send({"op": "submit", "id": "cut", "scenario": spec})
        # Let the job get past its first checkpoints, then SIGKILL the
        # daemon (nothing graceful: the atomic-checkpoint contract is the
        # thing under test).
        time.sleep(1.5)
        d.kill()
        killed_midway = any(cut_dir.glob("ckpt-*.json"))
    finally:
        if d.proc.poll() is None:
            d.kill()

    d = Daemon(args.daemon, workdir / "cut.sock", cut_dir)
    try:
        frames, final = d.submit("cut-resume", spec)
        assert final["event"] == "result", f"resume run failed: {final}"
        assert result_line(frames) == reference, \
            "resumed result differs from the uninterrupted reference"
        if killed_midway:
            jobs = [f for f, _ in frames if f.get("event") == "job"]
            assert jobs and jobs[0]["resumed"] is True, \
                "checkpoint present but the job did not resume from it"
            assert not any(cut_dir.glob("ckpt-*.json")), \
                "checkpoint not consumed after completion"
            print("leg 3 (SIGKILL/resume): ok (resumed mid-job)")
        else:
            # The job finished before the kill landed (fast machine): the
            # byte-equality above then asserts the cache-replay path.
            print("leg 3 (SIGKILL/resume): ok (job outran the kill; "
                  "cache replay checked)")
        d.shutdown()
    finally:
        if d.proc.poll() is None:
            d.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--daemon", required=True, type=pathlib.Path,
                        help="path to the ppkd binary")
    parser.add_argument("--fuzz", type=pathlib.Path, default=None,
                        help="path to conformance_fuzz (enables the replay "
                             "half of leg 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized populations")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="ppkd_smoke_") as tmp:
        workdir = pathlib.Path(tmp)
        leg_cache_hit(args, workdir)
        leg_fuzz_bridge(args, workdir)
        leg_kill_resume(args, workdir)
    print("ppkd smoke: all legs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
