#!/usr/bin/env python3
"""Benchmark-regression gate for the committed benchmark reports.

Dispatches on the new report's schema:

 - ppk-bench-engines-v1/-v2 (bench/batch_throughput): engine-throughput
   gates, baseline BENCH_ENGINES.json -- see below.  v2 adds the
   "sharded" engine to the grid plus the "sampler_setup" and
   "sharded_scale" blocks; v1 reports (older baselines) are still
   accepted, skipping the v2-only gates.
 - ppk-bench-topology-v1 (bench/topology_sensitivity): topology gates,
   baseline BENCH_TOPOLOGY.json -- see check_topology().
 - ppk-bench-fairness-v1 (bench/fairness_matrix): the three-families
   trade-off gates, baseline BENCH_FAIRNESS.json -- see
   check_fairness().  Every gated figure there is an interaction COUNT
   (the model's own time unit), so this branch needs no calibration:
   complete-graph probe counts are pinned to EXACT equality against the
   baseline on any machine, live-edge probes on the same machine only.
 - ppk-bench-exact-v1 (bench/exact_vs_monte_carlo): the symmetry-lumped
   exact back end's gates, baseline BENCH_EXACT.json -- see
   check_exact().  Every figure is an exact count or solver answer, so
   this branch compares across machines with no calibration.

Engine-throughput gates.  Validates a fresh report and compares it
against the committed baseline:

 1. Schema: required top-level keys, well-formed result rows, the
    schema's full engine set present for every (k, n) point.
 2. Claim: the batch engine sustains at least MIN_BATCH_SPEEDUP x the
    count engine's interactions/second at every measured point with
    k == 3 and n >= 1e5 (the headline o(1)-amortized claim; generous
    against the ~1000x actually measured).  Larger k is not gated: at
    k = 8 the |Q|^2 per-batch sampling cost has not amortized yet at
    n = 1e5 and the engines are merely comparable there.
 3. Regression: per (k, n), the batch engine did not drop more than
    MAX_REGRESSION below the baseline.  Rows that stabilized inside the
    wall cap in both reports compare drawn interactions/second (same
    seed => bit-identical total work).  Clock-capped rows compare
    *effective* interactions/second instead: the drawn rate at a capped
    point is hyper-sensitive to where the cap lands (null density grows
    without bound along the trajectory, so a small position deficit
    amplifies into orders of magnitude of drawn rate), while effective
    velocity measures actual progress linearly.  Points absent from the
    baseline (e.g. smoke vs full grids) are skipped -- the gate
    compares like with like.
 4. Observability overhead: when the new report declares that the
    observability hooks were compiled in with no sink attached
    (observability.compiled true, sink_attached false) AND the report
    came from the same machine as the baseline, the count and batch
    engines must be within MAX_OBS_OVERHEAD of the baseline at every
    overlapping point where both reports stabilized inside the wall
    cap.  Only those rows are gated this tightly: stabilized rows
    repeat bit-identical work, so their timing floors are comparable,
    while clock-capped rows are skipped (gate 3 still bounds them).
    This enforces the zero-overhead-when-disabled design of src/obs/
    (docs/observability.md): the dormant hook is one predictable
    branch, so a drop beyond noise means a hook leaked onto a hot path.
    Cross-machine comparisons skip this gate (throughput is not
    comparable); use --reps >= 3 when generating reports for it.
 5. Sampler setup (v2): warm engine construction costs less than
    MAX_WARM_FRACTION of the cold shared log-factorial table build --
    the hoisted-table amortization the bench also hard-asserts.
 6. Sharded scale (v2): the deep exact-budget block at n = 1e8 must
    contain the batch baseline row and sharded rows at worker counts
    1/2/4/8; every sharded row's verdict fingerprint must be identical
    (bit-determinism across thread counts -- the report itself records
    per-rep determinism in "deterministic"); and the SLOWEST sharded
    row must sustain at least MIN_SHARDED_SPEEDUP x the batch row's
    rate.  The speedup is a same-run ratio over identical budgets, so
    machine frequency cancels without calibration.  Against a baseline
    with the same (k, n, budget, seed): calibrated per-thread-row
    regression gates, and -- same machine only, because the shared
    table's lgamma values are libm-specific -- fingerprint equality
    with the baseline's rows.

 Calibration and noise.  Machines -- especially shared/virtualized
 ones -- drift in effective speed under sustained load, by far more
 than the margins gates 3 and 4 police.  The bench therefore
 interleaves slices of a fixed xoshiro256** kernel with every
 measurement and reports the aggregate as calibration_rate; whenever
 both rows carry one, gates 3 and 4 compare rates DIVIDED by it
 ("calibrated"), which cancels the machine-speed term.  Each row also
 carries rep_spread, the fractional spread of its per-rep calibrated
 rates: the measurement's own uncertainty.  Both gates widen their
 tolerance by the two rows' spreads, so thresholds are tight exactly
 when the machine was quiet enough to support them and honest when it
 was not -- a 2% claim cannot be made from a 10%-noisy measurement.
 Rows without calibration (older baselines) fall back to raw rates
 with a printed note; generate gate-quality reports with --reps >= 3.

Usage:
  scripts/check_bench_regression.py NEW.json [BASELINE.json]

Baseline defaults to the committed report matching NEW.json's schema
(BENCH_ENGINES.json or BENCH_TOPOLOGY.json).  Exits non-zero with a
reason on the first violated check.  Stdlib only.
"""

import json
import sys
from pathlib import Path

SCHEMA_V1 = "ppk-bench-engines-v1"
SCHEMA_V2 = "ppk-bench-engines-v2"
ENGINE_SCHEMAS = (SCHEMA_V1, SCHEMA_V2)
TOPOLOGY_SCHEMA = "ppk-bench-topology-v1"
ENGINES_V1 = {"agent", "count", "jump", "batch"}
ENGINES_V2 = ENGINES_V1 | {"sharded"}
REQUIRED_TOP = {"schema", "bench", "git_rev", "smoke", "wall_cap_seconds",
                "seed", "machine", "results"}
REQUIRED_TOP_V2 = REQUIRED_TOP | {"sampler_setup", "sharded_scale"}
REQUIRED_ROW = {"engine", "k", "n", "interactions", "effective", "seconds",
                "stabilized", "interactions_per_second"}
REQUIRED_SCALE_ROW = {"engine", "threads", "interactions", "effective",
                      "seconds", "interactions_per_second",
                      "calibration_rate", "rep_spread", "fingerprint"}
MIN_BATCH_SPEEDUP = 5.0       # vs count engine, at k == SPEEDUP_K, n >= ...
SPEEDUP_K = 3
SPEEDUP_MIN_N = 100_000
MAX_REGRESSION = 0.20         # fractional drop vs baseline batch throughput
MAX_OBS_OVERHEAD = 0.02       # dormant observability hooks: <= 2% drop
OBS_GATED_ENGINES = ("count", "batch")  # hot pairwise path + hot batch path
MACHINE_KEYS = ("hardware_threads", "compiler", "assertions_disabled",
                "os", "arch")

# v2 sharded gates.
MIN_SHARDED_SPEEDUP = 1.25    # slowest sharded row vs batch, same budget
MAX_WARM_FRACTION = 0.5       # warm engine ctor vs cold log-fact build
SHARDED_THREADS = (1, 2, 4, 8)

# Fairness-report gates (schema ppk-bench-fairness-v1).
FAIRNESS_SCHEMA = "ppk-bench-fairness-v1"
FAIRNESS_FAMILIES = {"kpartition", "weak-kpartition", "graph-bipartition"}
FAIRNESS_POLICIES = {"uniform-random", "epsilon-fair", "weak-round-robin"}
# The families' state counts as a function of k -- the trade-off table's
# first column, machine-checked against the protocol objects.
FAMILY_STATES = {
    "kpartition": lambda k: 3 * k - 2,
    "weak-kpartition": lambda k: 3 * k + 1,
    "graph-bipartition": lambda k: 5,
}
# The exhaustive weak-fairness ground truth (verify/weak_fairness.hpp):
# only the weak family survives weak fairness.
EXPECTED_WEAK_VERDICT = {
    "kpartition": False,
    "weak-kpartition": True,
    "graph-bipartition": False,
}
REQUIRED_FAIRNESS_TOP = {"schema", "bench", "git_rev", "smoke", "interrupted",
                         "seed", "machine", "tradeoff", "matrix", "topology",
                         "verifier"}
REQUIRED_FAIRNESS_ROW = {"family", "k", "n", "states", "policy", "epsilon",
                         "topology", "engine", "trials", "budget",
                         "stabilized_rate", "stalled_rate",
                         "mean_interactions_stabilized", "probe_interactions",
                         "probe_stabilized"}
REQUIRED_VERDICT_ROW = {"family", "k", "n", "fairness", "solves",
                        "exploration_complete", "reachable_configs",
                        "bottom_sccs"}

# Exact-report gates (schema ppk-bench-exact-v1, bench/exact_vs_monte_carlo).
# Every gated figure is an exact count or solver answer, so this branch
# needs no timing calibration and compares across machines.
EXACT_SCHEMA = "ppk-bench-exact-v1"
EXACT_FAMILIES = {"kpartition", "weak-kpartition", "bipartition"}
EXACT_AGREEMENT_TOL = 1e-9    # lumped vs dense relative error, per row
EXACT_CEILING_FACTOR = 10     # lumped rows sit >= this x the dense cap
EXACT_BASELINE_TOL = 1e-9     # same chain, same exact answer, any machine
REQUIRED_EXACT_TOP = {"schema", "bench", "git_rev", "smoke", "interrupted",
                      "seed", "machine", "dense_cap", "monte_carlo",
                      "agreement", "ceiling"}
REQUIRED_AGREEMENT_ROW = {"family", "k", "n", "dense", "lumped", "rel_error",
                          "configs", "orbits", "group_order"}
REQUIRED_CEILING_ROW = {"family", "k", "n", "reachable_configs", "orbits",
                        "group_order", "expected_interactions", "solved"}

# Topology-report gates (schema ppk-bench-topology-v1).
MIN_WEDGE_SPEEDUP = 50.0      # live-edge vs per-draw on the wedged ring
WEDGE_MIN_N = 100_000         # the acceptance-bar problem size
ER_MIN_N = 1_000_000
GRAPH_ENGINES = {"graph", "live-edge"}
REQUIRED_TOPOLOGY_TOP = {"schema", "bench", "git_rev", "smoke", "seed",
                         "machine", "sweep", "wedged_ring_speedup",
                         "er_generation"}
REQUIRED_SWEEP_ROW = {"k", "topology", "engine", "avg_degree",
                      "stabilized_rate", "stalled_rate",
                      "mean_interactions_stabilized", "trials"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")


def engine_set(doc):
    return ENGINES_V2 if doc.get("schema") == SCHEMA_V2 else ENGINES_V1


def validate_schema(doc, path):
    if doc.get("schema") not in ENGINE_SCHEMAS:
        fail(f"{path}: schema {doc.get('schema')!r}, expected one of "
             f"{list(ENGINE_SCHEMAS)}")
    required = REQUIRED_TOP_V2 if doc["schema"] == SCHEMA_V2 else REQUIRED_TOP
    missing = required - doc.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        fail(f"{path}: results must be a non-empty array")
    engines = engine_set(doc)
    points = {}
    for i, row in enumerate(doc["results"]):
        missing = REQUIRED_ROW - row.keys()
        if missing:
            fail(f"{path}: results[{i}] missing {sorted(missing)}")
        if row["engine"] not in engines:
            fail(f"{path}: results[{i}] unknown engine {row['engine']!r}")
        if row["seconds"] <= 0 or row["interactions_per_second"] <= 0:
            fail(f"{path}: results[{i}] non-positive measurement")
        points.setdefault((row["k"], row["n"]), {})[row["engine"]] = row
    for (k, n), rows in points.items():
        if set(rows) != engines:
            fail(f"{path}: point (k={k}, n={n}) has engines {sorted(rows)}, "
                 f"expected all of {sorted(engines)}")
    if doc["schema"] == SCHEMA_V2:
        validate_sharded_scale(doc, path)
    return points


def validate_sharded_scale(doc, path):
    """Structural checks on the v2 deep-trial block: every expected row
    present and well-formed.  Gating happens in check_sharded_scale()."""
    scale = doc["sharded_scale"]
    for key in ("k", "n", "budget", "seed", "deterministic", "rows"):
        if key not in scale:
            fail(f"{path}: sharded_scale missing {key!r}")
    if not scale["deterministic"]:
        fail(f"{path}: sharded_scale reports deterministic=false (a rep "
             f"reproduced a different verdict fingerprint)")
    rows = scale["rows"]
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: sharded_scale.rows must be a non-empty array")
    sharded = {}
    batch = None
    for i, row in enumerate(rows):
        missing = REQUIRED_SCALE_ROW - row.keys()
        if missing:
            fail(f"{path}: sharded_scale.rows[{i}] missing {sorted(missing)}")
        if row["seconds"] <= 0 or row["interactions_per_second"] <= 0:
            fail(f"{path}: sharded_scale.rows[{i}] non-positive measurement")
        if row["engine"] == "batch":
            batch = row
        elif row["engine"] == "sharded":
            sharded[row["threads"]] = row
        else:
            fail(f"{path}: sharded_scale.rows[{i}] unknown engine "
                 f"{row['engine']!r}")
    if batch is None:
        fail(f"{path}: sharded_scale has no batch baseline row")
    missing_threads = set(SHARDED_THREADS) - sharded.keys()
    if missing_threads:
        fail(f"{path}: sharded_scale missing sharded rows at thread "
             f"counts {sorted(missing_threads)}")
    verdicts = {row["fingerprint"] for row in sharded.values()}
    if len(verdicts) != 1:
        fail(f"{path}: sharded_scale verdict fingerprints differ across "
             f"thread counts: {sorted(verdicts)} -- the sharded engine "
             f"must be bit-identical at 1/2/4/8 workers")
    return batch, sharded


def calibration_scales(new_row, base_row):
    """(new_scale, base_scale, label_prefix): divisors that cancel the
    machines' momentary frequency when both rows carry a calibration
    rate, else identity with a note-worthy empty prefix."""
    new_cal = new_row.get("calibration_rate", 0)
    base_cal = base_row.get("calibration_rate", 0)
    if new_cal > 0 and base_cal > 0:
        return new_cal, base_cal, "calibrated "
    return 1.0, 1.0, ""


def comparable_rate(new_row, base_row):
    """Returns (metric_name, new_rate, base_rate) for a fair comparison.

    Stabilized-in-both rows did bit-identical work (same seed, same
    trajectory), so drawn interactions/second compares directly.  Capped
    rows stopped mid-trajectory at different positions; their drawn rate
    diverges super-linearly with position (null runs grow without bound),
    so effective interactions/second -- linear in actual progress -- is
    the honest metric there.  Both are divided by the rows' calibration
    rates when available (see the module docstring).
    """
    new_scale, base_scale, prefix = calibration_scales(new_row, base_row)
    if new_row["stabilized"] and base_row["stabilized"]:
        return (prefix + "throughput",
                new_row["interactions_per_second"] / new_scale,
                base_row["interactions_per_second"] / base_scale)
    return (prefix + "effective velocity",
            new_row["effective"] / new_row["seconds"] / new_scale,
            base_row["effective"] / base_row["seconds"] / base_scale)


def noise_margin(new_row, base_row):
    """Combined measured uncertainty of the two rows being compared."""
    return (new_row.get("rep_spread", 0.0) + base_row.get("rep_spread", 0.0))


def same_machine(new_doc, base_doc):
    new_machine = new_doc.get("machine", {})
    base_machine = base_doc.get("machine", {})
    return all(new_machine.get(key) == base_machine.get(key)
               for key in MACHINE_KEYS)


def check_obs_overhead(new_doc, base_doc, new_points, base_points):
    obs = new_doc.get("observability")
    if not obs or not obs.get("compiled") or obs.get("sink_attached"):
        print("skip: observability-overhead gate (new report does not "
              "declare dormant hooks)")
        return
    if not same_machine(new_doc, base_doc):
        print("skip: observability-overhead gate (machine differs from "
              "baseline; throughput not comparable)")
        return
    gated = 0
    for (k, n), rows in sorted(new_points.items()):
        base = base_points.get((k, n))
        if base is None:
            continue
        for engine in OBS_GATED_ENGINES:
            if not (rows[engine]["stabilized"] and
                    base[engine]["stabilized"]):
                print(f"skip: (k={k}, n={n}, {engine}) clock-capped; the "
                      f"{MAX_OBS_OVERHEAD:.0%} gate needs the bit-identical "
                      f"work of stabilized rows")
                continue
            new_scale, base_scale, prefix = calibration_scales(
                rows[engine], base[engine])
            if not prefix:
                print(f"note: (k={k}, n={n}, {engine}) comparing raw rates "
                      f"(a report lacks calibration_rate); frequency drift "
                      f"may masquerade as overhead")
            new_tp = rows[engine]["interactions_per_second"] / new_scale
            base_tp = base[engine]["interactions_per_second"] / base_scale
            drop = 1.0 - new_tp / base_tp
            allowed = MAX_OBS_OVERHEAD + noise_margin(rows[engine],
                                                      base[engine])
            if drop > allowed:
                fail(f"(k={k}, n={n}, {engine}): {prefix}throughput dropped "
                     f"{drop:.1%} with dormant observability hooks "
                     f"({new_tp:.3g} vs {base_tp:.3g}); the zero-overhead "
                     f"gate allows {allowed:.1%} ({MAX_OBS_OVERHEAD:.0%} "
                     f"budget + measured rep spread)")
            print(f"ok: (k={k}, n={n}, {engine}) dormant-hook overhead "
                  f"{max(drop, 0.0):.1%} (<= {allowed:.1%})")
            gated += 1
    if gated == 0:
        fail("observability-overhead gate applied but no stabilized "
             "(k, n) point overlapped the baseline")


def validate_topology_schema(doc, path):
    missing = REQUIRED_TOPOLOGY_TOP - doc.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if doc["schema"] != TOPOLOGY_SCHEMA:
        fail(f"{path}: schema {doc['schema']!r}, expected {TOPOLOGY_SCHEMA!r}")
    if not isinstance(doc["sweep"], list) or not doc["sweep"]:
        fail(f"{path}: sweep must be a non-empty array")
    points = {}
    for i, row in enumerate(doc["sweep"]):
        missing = REQUIRED_SWEEP_ROW - row.keys()
        if missing:
            fail(f"{path}: sweep[{i}] missing {sorted(missing)}")
        if row["engine"] not in GRAPH_ENGINES:
            fail(f"{path}: sweep[{i}] unknown engine {row['engine']!r}")
        for rate in ("stabilized_rate", "stalled_rate"):
            if not 0.0 <= row[rate] <= 1.0:
                fail(f"{path}: sweep[{i}] {rate} outside [0, 1]")
        if row["engine"] == "graph" and row["stalled_rate"] != 0.0:
            fail(f"{path}: sweep[{i}] per-draw engine reports stalled "
                 f"trials; it cannot detect stalls by construction")
        if row["topology"] == "complete" and row["stabilized_rate"] != 1.0:
            fail(f"{path}: sweep[{i}] complete graph stabilized only "
                 f"{row['stabilized_rate']:.0%} of trials (Theorem 1 says "
                 f"always)")
        points.setdefault((row["k"], row["topology"]), {})[row["engine"]] = row
    for (k, topology), rows in points.items():
        if set(rows) != GRAPH_ENGINES:
            fail(f"{path}: point (k={k}, {topology}) has engines "
                 f"{sorted(rows)}, expected both of {sorted(GRAPH_ENGINES)}")
    return points


def gate_rate_drop(label, new_rate, new_cal, new_spread,
                   base_rate, base_cal, base_spread):
    """Fails if `new_rate` dropped more than MAX_REGRESSION (plus measured
    rep spread) below `base_rate`, dividing by the calibration rates when
    both reports carry one (cancels machine-frequency drift)."""
    if new_cal > 0 and base_cal > 0:
        prefix = "calibrated "
        new_rate, base_rate = new_rate / new_cal, base_rate / base_cal
    else:
        prefix = ""
        print(f"note: {label}: comparing raw rates (a report lacks "
              f"calibration_rate); frequency drift may masquerade as "
              f"regression")
    drop = 1.0 - new_rate / base_rate
    allowed = MAX_REGRESSION + new_spread + base_spread
    if drop > allowed:
        fail(f"{label}: {prefix}rate dropped {drop:.0%} vs baseline "
             f"({new_rate:.3g} vs {base_rate:.3g}); the gate allows "
             f"{allowed:.0%} ({MAX_REGRESSION:.0%} budget + measured rep "
             f"spread)")
    print(f"ok: {label} {prefix}rate {new_rate:.3g} "
          f"({-drop:+.0%} vs baseline)")


def validate_exact_schema(doc, path):
    if doc.get("schema") != EXACT_SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected {EXACT_SCHEMA}")
    missing = REQUIRED_EXACT_TOP - doc.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if doc["interrupted"]:
        fail(f"{path}: report marked interrupted; regenerate before gating")
    for key, required in (("agreement", REQUIRED_AGREEMENT_ROW),
                          ("ceiling", REQUIRED_CEILING_ROW)):
        rows = doc[key]
        if not isinstance(rows, list) or not rows:
            fail(f"{path}: {key} must be a non-empty array")
        for i, row in enumerate(rows):
            row_missing = required - row.keys()
            if row_missing:
                fail(f"{path}: {key}[{i}] missing {sorted(row_missing)}")
        families = {row["family"] for row in rows}
        if families != EXACT_FAMILIES:
            fail(f"{path}: {key} covers families {sorted(families)}, "
                 f"expected exactly {sorted(EXACT_FAMILIES)}")


def check_exact(new_doc, base_doc, new_path, base_path):
    """Gates for the exact report (schema ppk-bench-exact-v1):

     1. Schema: agreement and ceiling rows for all three families
        (kpartition, weak-kpartition, bipartition).
     2. Agreement: at every size both back ends reach, the lumped answer
        matches dense elimination to <= EXACT_AGREEMENT_TOL relative
        error.  This is the correctness claim of the whole lumped path.
     3. Ceiling: every family's ceiling row solved a chain whose
        reachable configuration space is >= EXACT_CEILING_FACTOR x the
        dense solver's cap -- the reach claim.
     4. Baseline: exact answers are machine-independent, so any row the
        committed BENCH_EXACT.json shares (same family, k, n) must agree
        to EXACT_BASELINE_TOL, and no family's ceiling may shrink below
        the baseline's.  No calibration, no same-machine carve-outs.
    """
    validate_exact_schema(new_doc, new_path)
    validate_exact_schema(base_doc, base_path)

    worst = max(new_doc["agreement"], key=lambda row: row["rel_error"])
    for row in new_doc["agreement"]:
        label = (f"agreement {row['family']} (k={row['k']}, n={row['n']})")
        if row["dense"] <= 0 or row["lumped"] <= 0:
            fail(f"{label}: missing back-end answer "
                 f"(dense={row['dense']}, lumped={row['lumped']})")
        if row["rel_error"] > EXACT_AGREEMENT_TOL:
            fail(f"{label}: lumped diverges from dense by "
                 f"{row['rel_error']:.3g} relative "
                 f"(> {EXACT_AGREEMENT_TOL:.0e}); the lumped back end is "
                 f"giving different exact answers")
    print(f"ok: {len(new_doc['agreement'])} lumped-vs-dense rows agree "
          f"(worst rel error {worst['rel_error']:.3g} at "
          f"{worst['family']} n={worst['n']})")

    dense_cap = new_doc["dense_cap"]
    floor = EXACT_CEILING_FACTOR * dense_cap
    base_ceiling = {row["family"]: row for row in base_doc["ceiling"]}
    for row in new_doc["ceiling"]:
        label = f"ceiling {row['family']} (n={row['n']})"
        if not row["solved"]:
            fail(f"{label}: the lumped back end failed to solve it")
        if row["reachable_configs"] < floor:
            fail(f"{label}: {row['reachable_configs']} reachable "
                 f"configurations, below the acceptance bar "
                 f"{EXACT_CEILING_FACTOR}x dense cap = {floor}")
        base = base_ceiling.get(row["family"])
        if base is None:
            continue
        if row["reachable_configs"] < base["reachable_configs"]:
            fail(f"{label}: ceiling shrank to {row['reachable_configs']} "
                 f"configurations (baseline "
                 f"{base['reachable_configs']})")
        if (row["n"] == base["n"] and row["k"] == base["k"]
                and base["solved"]):
            drift = (abs(row["expected_interactions"]
                         - base["expected_interactions"])
                     / base["expected_interactions"])
            if drift > EXACT_BASELINE_TOL:
                fail(f"{label}: exact answer drifted {drift:.3g} relative "
                     f"from the baseline ({row['expected_interactions']!r} "
                     f"vs {base['expected_interactions']!r}); exact answers "
                     f"are machine-independent, so this is a solver change")
        print(f"ok: {label} solved {row['reachable_configs']} configurations "
              f"as {row['orbits']} orbits (|G|={row['group_order']})")

    base_agreement = {(row["family"], row["k"], row["n"]): row
                      for row in base_doc["agreement"]}
    compared = 0
    for row in new_doc["agreement"]:
        base = base_agreement.get((row["family"], row["k"], row["n"]))
        if base is None:
            continue
        drift = abs(row["lumped"] - base["lumped"]) / base["lumped"]
        if drift > EXACT_BASELINE_TOL:
            fail(f"agreement {row['family']} (k={row['k']}, n={row['n']}): "
                 f"lumped answer drifted {drift:.3g} relative from the "
                 f"baseline")
        compared += 1
    print(f"ok: {compared} agreement rows match the baseline to "
          f"{EXACT_BASELINE_TOL:.0e}")


def check_topology(new_doc, base_doc, new_path, base_path):
    """Gates for the topology report (schema ppk-bench-topology-v1):

     1. Schema: both graph engines at every sweep point; the per-draw
        engine never claims a stalled trial (it cannot detect one); the
        complete graph stabilizes every trial (Theorem 1).
     2. Wedge detection: some live-edge sweep row reports stalled_rate
        > 0 (the detector actually fires on sparse topologies), and the
        wedged-ring block confirms every live-edge trial proved the
        wedge at 0 interactions.
     3. Speedup claim: live-edge beats the per-draw engine by at least
        MIN_WEDGE_SPEEDUP x on the wedged ring at n >= 1e5.  This is a
        same-run ratio, so machine frequency cancels without
        calibration; it understates the real gap because the per-draw
        engine's cost is linear in its charged budget.
     4. ER generation: connected G(n, 2 ln n / n) at n >= 1e6 was built
        (the expected-O(n + m) sampler's acceptance bar).
     5. Regressions vs the committed BENCH_TOPOLOGY.json, calibrated
        and noise-widened exactly like the engine gates: wedge proofs
        per second (live-edge setup + O(1) detection; budget-
        independent, so smoke and full reports compare), per-draw
        drawn-interactions per second, and ER edges per second.
    """
    new_points = validate_topology_schema(new_doc, new_path)
    validate_topology_schema(base_doc, base_path)

    detected = [(k, topology)
                for (k, topology), rows in sorted(new_points.items())
                if rows["live-edge"]["stalled_rate"] > 0]
    if not detected:
        fail("no live-edge sweep row reports stalled_rate > 0: exact wedge "
             "detection never fired on any sparse topology")
    print(f"ok: live-edge wedge detection fired at {len(detected)} sweep "
          f"point(s), e.g. (k={detected[0][0]}, {detected[0][1]})")

    wedge = new_doc["wedged_ring_speedup"]
    if wedge["n"] < WEDGE_MIN_N:
        fail(f"wedged-ring block ran at n={wedge['n']}, below the "
             f"acceptance bar n >= {WEDGE_MIN_N}")
    if not wedge.get("live_detected_wedge"):
        fail("wedged-ring block: a live-edge trial advanced or stabilized; "
             "the hand-wedged configuration must be proven dead at 0 "
             "interactions")
    if wedge["speedup"] < MIN_WEDGE_SPEEDUP:
        fail(f"wedged ring (n={wedge['n']}): live-edge is only "
             f"{wedge['speedup']:.1f}x the per-draw engine; the gate "
             f"requires >= {MIN_WEDGE_SPEEDUP:.0f}x")
    print(f"ok: wedged ring (n={wedge['n']}) live-edge speedup "
          f"{wedge['speedup']:.0f}x (>= {MIN_WEDGE_SPEEDUP:.0f}x; per-draw "
          f"charged {wedge['graph_budget']:.2g} draws)")

    er = new_doc["er_generation"]
    if er["n"] < ER_MIN_N:
        fail(f"er_generation ran at n={er['n']}, below the acceptance bar "
             f"n >= {ER_MIN_N}")
    if not er["connected"]:
        fail(f"er_generation: G(n={er['n']}, p={er['p']:.3g}) came out "
             f"disconnected")
    print(f"ok: connected G(n={er['n']}, p=2ln(n)/n) built: {er['edges']} "
          f"edges in {er['seconds']:.2f}s")

    base_wedge = base_doc["wedged_ring_speedup"]
    if wedge["n"] == base_wedge["n"]:
        gate_rate_drop(
            f"wedged ring (n={wedge['n']}) live-edge wedge proofs",
            1.0 / wedge["live_seconds"], wedge.get("calibration_rate", 0),
            wedge.get("live_rep_spread", 0.0),
            1.0 / base_wedge["live_seconds"],
            base_wedge.get("calibration_rate", 0),
            base_wedge.get("live_rep_spread", 0.0))
        gate_rate_drop(
            f"wedged ring (n={wedge['n']}) per-draw drawn interactions",
            wedge["graph_budget"] / wedge["graph_seconds"],
            wedge.get("calibration_rate", 0),
            wedge.get("graph_rep_spread", 0.0),
            base_wedge["graph_budget"] / base_wedge["graph_seconds"],
            base_wedge.get("calibration_rate", 0),
            base_wedge.get("graph_rep_spread", 0.0))
    else:
        print(f"skip: wedged-ring regression (n={wedge['n']} vs baseline "
              f"n={base_wedge['n']}; costs not comparable)")

    base_er = base_doc["er_generation"]
    if er["n"] == base_er["n"]:
        gate_rate_drop(
            f"ER generation (n={er['n']}) edges",
            er["edges"] / er["seconds"], er.get("calibration_rate", 0),
            er.get("rep_spread", 0.0),
            base_er["edges"] / base_er["seconds"],
            base_er.get("calibration_rate", 0),
            base_er.get("rep_spread", 0.0))
    else:
        print(f"skip: ER-generation regression (n={er['n']} vs baseline "
              f"n={base_er['n']}; costs not comparable)")


def validate_fairness_schema(doc, path):
    """Structural checks on a ppk-bench-fairness-v1 report; returns the
    rows of the three measured blocks keyed for baseline matching."""
    if doc.get("schema") != FAIRNESS_SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected "
             f"{FAIRNESS_SCHEMA!r}")
    missing = REQUIRED_FAIRNESS_TOP - doc.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if doc["interrupted"]:
        fail(f"{path}: report flagged interrupted; partial sweeps cannot "
             f"be gated or become baselines")
    rows = {}
    for block in ("tradeoff", "matrix", "topology"):
        if not isinstance(doc[block], list) or not doc[block]:
            fail(f"{path}: {block} must be a non-empty array")
        for i, row in enumerate(doc[block]):
            missing = REQUIRED_FAIRNESS_ROW - row.keys()
            if missing:
                fail(f"{path}: {block}[{i}] missing {sorted(missing)}")
            if row["family"] not in FAIRNESS_FAMILIES:
                fail(f"{path}: {block}[{i}] unknown family "
                     f"{row['family']!r}")
            if row["policy"] not in FAIRNESS_POLICIES:
                fail(f"{path}: {block}[{i}] unknown policy "
                     f"{row['policy']!r}")
            for rate in ("stabilized_rate", "stalled_rate"):
                if not 0.0 <= row[rate] <= 1.0:
                    fail(f"{path}: {block}[{i}] {rate} outside [0, 1]")
            expected_states = FAMILY_STATES[row["family"]](row["k"])
            if row["states"] != expected_states:
                fail(f"{path}: {block}[{i}] {row['family']} (k={row['k']}) "
                     f"reports {row['states']} states, the family formula "
                     f"says {expected_states}")
            key = (block, row["family"], row["k"], row["n"], row["policy"],
                   row["epsilon"], row["topology"], row["engine"],
                   row["budget"])
            if key in rows:
                fail(f"{path}: duplicate {block} row {key}")
            rows[key] = row
    if not isinstance(doc["verifier"], list) or not doc["verifier"]:
        fail(f"{path}: verifier must be a non-empty array")
    for i, row in enumerate(doc["verifier"]):
        missing = REQUIRED_VERDICT_ROW - row.keys()
        if missing:
            fail(f"{path}: verifier[{i}] missing {sorted(missing)}")
    return rows


def check_fairness(new_doc, base_doc, new_path, base_path):
    """Gates for the fairness report (schema ppk-bench-fairness-v1):

     1. Schema: all four blocks present and well-formed; every row's
        state count matches its family's formula (3k-2 / 3k+1 / 5) --
        the trade-off table's state column, machine-checked.
     2. Trade-off block: every family stabilizes every trial on its
        common ground (complete graph, uniform-random scheduler).
     3. Fairness matrix: every cell stabilizes -- including the
        global-fairness families under the weak-round-robin adversary.
        That is the methodology pin (docs/fairness.md): greedy
        simulation cannot refute a fairness assumption, so a matrix
        where some cell suddenly livelocks means the scheduler changed,
        not the theory.
     4. Topology block: graph-bipartition stabilizes every trial on
        EVERY topology (its paper's claim); the complete-graph
        k-partition protocol fails some trials on each sparse topology
        (the negative control -- if it stops failing, the sweep is not
        exercising sparse graphs at all).
     5. Verifier block: the exhaustive weak-fairness verdicts match the
        ground truth (only weak-kpartition solves), each from a
        complete exploration.
     6. Probe regression vs the committed BENCH_FAIRNESS.json: every
        row's probe_interactions (trial 0's drawn-pair count, a pure
        function of the seed) must EXACTLY equal the baseline's on
        matching rows.  Counts are the model's own time unit --
        machine-independent for the complete-graph engines, so this
        pins bit-reproducibility across machines; live-edge rows are
        pinned on the same machine only (the skip-ahead sampler calls
        libm).  Rows whose configuration differs from the baseline
        (different seed, budget or grid) are skipped.
    """
    new_rows = validate_fairness_schema(new_doc, new_path)
    validate_fairness_schema(base_doc, base_path)

    for (block, family, k, n, policy, *_), row in sorted(new_rows.items()):
        where = f"{block} ({family}, k={k}, n={n}, {policy}, " \
                f"{row['topology']})"
        if block == "tradeoff" and row["stabilized_rate"] != 1.0:
            fail(f"{where}: stabilized only {row['stabilized_rate']:.0%} of "
                 f"trials on the family's home ground")
        if block == "matrix" and row["stabilized_rate"] != 1.0:
            fail(f"{where}: stabilized only {row['stabilized_rate']:.0%}; "
                 f"every matrix cell must stabilize (simulation cannot "
                 f"refute -- see docs/fairness.md)")
        if block == "topology":
            if (family == "graph-bipartition"
                    and row["stabilized_rate"] != 1.0):
                fail(f"{where}: graph-bipartition stabilized only "
                     f"{row['stabilized_rate']:.0%}; its paper claims every "
                     f"connected topology")
            if (family == "kpartition" and row["topology"] != "complete"
                    and row["stabilized_rate"] >= 1.0):
                fail(f"{where}: the complete-graph protocol stabilized every "
                     f"trial on a sparse topology -- the negative control "
                     f"stopped failing")
    print(f"ok: all {len(new_rows)} measured rows satisfy their family's "
          f"stabilization claims (state counts match the formulas)")

    for row in new_doc["verifier"]:
        expected = EXPECTED_WEAK_VERDICT.get(row["family"])
        if expected is None:
            fail(f"verifier row for unknown family {row['family']!r}")
        if not row["exploration_complete"]:
            fail(f"verifier ({row['family']}, n={row['n']}): exploration "
                 f"incomplete; the verdict is not ground truth")
        if row["solves"] != expected:
            fail(f"verifier ({row['family']}, n={row['n']}): solves="
                 f"{row['solves']} under weak fairness, ground truth says "
                 f"{expected}")
    print(f"ok: {len(new_doc['verifier'])} exhaustive weak-fairness "
          f"verdicts match the ground truth (only weak-kpartition solves)")

    if new_doc.get("seed") != base_doc.get("seed"):
        print(f"skip: probe regression (seed {new_doc.get('seed')} vs "
              f"baseline {base_doc.get('seed')}; probes not comparable)")
        return
    base_rows = validate_fairness_schema(base_doc, base_path)
    on_same_machine = same_machine(new_doc, base_doc)
    pinned = 0
    for key, row in sorted(new_rows.items()):
        base = base_rows.get(key)
        block, family, k, n, policy = key[:5]
        where = f"{block} ({family}, k={k}, n={n}, {policy}, " \
                f"{row['topology']})"
        if base is None:
            print(f"skip: {where} not in baseline grid")
            continue
        if row["engine"] == "live-edge" and not on_same_machine:
            print(f"skip: {where} live-edge probe (machine differs; the "
                  f"skip-ahead sampler's libm calls are platform-specific)")
            continue
        if row["probe_interactions"] != base["probe_interactions"]:
            fail(f"{where}: probe interactions {row['probe_interactions']} "
                 f"!= baseline {base['probe_interactions']} -- trial 0 is a "
                 f"pure function of the seed, so the schedule is no longer "
                 f"bit-reproducible")
        pinned += 1
    if pinned == 0:
        fail("no fairness row overlapped the baseline -- nothing was pinned")
    print(f"ok: {pinned} probe count(s) exactly match the baseline "
          f"(bit-reproducible schedules)")


def check_sampler_setup(new_doc):
    """Gate 5: per-engine sampler setup stays amortized out."""
    if new_doc["schema"] != SCHEMA_V2:
        print("skip: sampler-setup gate (v1 report)")
        return
    setup = new_doc["sampler_setup"]
    fraction = setup.get("warm_fraction")
    if fraction is None:
        fail("sampler_setup block lacks warm_fraction")
    if fraction >= MAX_WARM_FRACTION:
        fail(f"sampler setup: warm engine construction costs {fraction:.0%} "
             f"of the cold log-factorial build (>= {MAX_WARM_FRACTION:.0%}); "
             f"the shared table is not being reused across engines")
    print(f"ok: sampler setup amortized (warm/cold {fraction:.2%}, "
          f"gate < {MAX_WARM_FRACTION:.0%})")


def check_sharded_scale(new_doc, base_doc, new_path, base_path):
    """Gate 6: the deep-trial block's speedup, determinism and (when the
    baseline ran the identical configuration) regression gates."""
    if new_doc["schema"] != SCHEMA_V2:
        print("skip: sharded-scale gate (v1 report)")
        return
    scale = new_doc["sharded_scale"]
    batch, sharded = validate_sharded_scale(new_doc, new_path)

    # The committed claim: even the slowest sharded row beats batch by the
    # committed multiple.  Same run, same exact budget -- machine frequency
    # cancels in the ratio, no calibration needed.
    slowest = min(sharded.values(), key=lambda r: r["interactions_per_second"])
    speedup = (slowest["interactions_per_second"] /
               batch["interactions_per_second"])
    if speedup < MIN_SHARDED_SPEEDUP:
        fail(f"sharded_scale (k={scale['k']}, n={scale['n']}): slowest "
             f"sharded row (threads={slowest['threads']}) is only "
             f"{speedup:.2f}x the batch baseline; the gate requires "
             f">= {MIN_SHARDED_SPEEDUP}x")
    print(f"ok: sharded_scale (k={scale['k']}, n={scale['n']}) slowest "
          f"sharded/batch speedup {speedup:.2f}x "
          f"(>= {MIN_SHARDED_SPEEDUP}x)")

    if base_doc["schema"] != SCHEMA_V2:
        print("skip: sharded-scale baseline comparison (v1 baseline)")
        return
    base_scale = base_doc["sharded_scale"]
    same_config = all(base_scale.get(key) == scale.get(key)
                      for key in ("k", "n", "budget", "seed"))
    if not same_config:
        print(f"skip: sharded-scale baseline comparison (configuration "
              f"differs: n={scale['n']}/budget={scale['budget']} vs baseline "
              f"n={base_scale.get('n')}/budget={base_scale.get('budget')})")
        return
    base_batch, base_sharded = validate_sharded_scale(base_doc, base_path)
    for threads in SHARDED_THREADS:
        row, base_row = sharded[threads], base_sharded[threads]
        gate_rate_drop(
            f"sharded_scale (n={scale['n']}, threads={threads})",
            row["interactions_per_second"], row.get("calibration_rate", 0),
            row.get("rep_spread", 0.0),
            base_row["interactions_per_second"],
            base_row.get("calibration_rate", 0),
            base_row.get("rep_spread", 0.0))
    # Verdict fingerprints hash the final configuration, whose trajectory
    # runs through shared-table lgamma values below the table bound; those
    # are libm-specific, so equality with the baseline is only a claim on
    # the same machine.
    if same_machine(new_doc, base_doc):
        for threads in SHARDED_THREADS:
            new_fp = sharded[threads]["fingerprint"]
            base_fp = base_sharded[threads]["fingerprint"]
            if new_fp != base_fp:
                fail(f"sharded_scale (threads={threads}): verdict "
                     f"fingerprint {new_fp} != baseline {base_fp} on the "
                     f"same machine and configuration -- the trajectory is "
                     f"no longer bit-reproducible")
        print(f"ok: sharded_scale verdict fingerprints match the baseline "
              f"({sharded[SHARDED_THREADS[0]]['fingerprint']})")
    else:
        print("skip: sharded-scale fingerprint-vs-baseline check (machine "
              "differs; shared-table lgamma values are libm-specific)")


def check_engines(new_doc, base_doc, new_path, base_path):
    new_points = validate_schema(new_doc, new_path)
    base_points = validate_schema(base_doc, base_path)

    for (k, n), rows in sorted(new_points.items()):
        if k != SPEEDUP_K or n < SPEEDUP_MIN_N:
            continue
        batch = rows["batch"]["interactions_per_second"]
        count = rows["count"]["interactions_per_second"]
        speedup = batch / count
        if speedup < MIN_BATCH_SPEEDUP:
            fail(f"(k={k}, n={n}): batch is only {speedup:.2f}x the count "
                 f"engine ({batch:.3g} vs {count:.3g} int/s); the gate "
                 f"requires >= {MIN_BATCH_SPEEDUP}x")
        print(f"ok: (k={k}, n={n}) batch/count speedup {speedup:.1f}x")

    # Both the batch engine and (when both reports carry it) its sharded
    # rebuild are regression-gated against the baseline grid.
    gated_engines = tuple(e for e in ("batch", "sharded")
                          if e in engine_set(new_doc) & engine_set(base_doc))
    compared = 0
    for (k, n), rows in sorted(new_points.items()):
        base = base_points.get((k, n))
        if base is None:
            print(f"skip: (k={k}, n={n}) not in baseline grid")
            continue
        for engine in gated_engines:
            metric, new_tp, base_tp = comparable_rate(rows[engine],
                                                      base[engine])
            drop = 1.0 - new_tp / base_tp
            allowed = MAX_REGRESSION + noise_margin(rows[engine],
                                                    base[engine])
            if drop > allowed:
                fail(f"(k={k}, n={n}): {engine} {metric} dropped "
                     f"{drop:.0%} vs baseline ({new_tp:.3g} vs "
                     f"{base_tp:.3g}); the gate allows {allowed:.0%} "
                     f"({MAX_REGRESSION:.0%} budget + measured rep spread)")
            print(f"ok: (k={k}, n={n}) {engine} {metric} {new_tp:.3g} "
                  f"({-drop:+.0%} vs baseline)")
            compared += 1
    if compared == 0:
        fail("no (k, n) point overlapped the baseline -- nothing was gated")

    check_obs_overhead(new_doc, base_doc, new_points, base_points)
    check_sampler_setup(new_doc)
    check_sharded_scale(new_doc, base_doc, new_path, base_path)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    new_path = Path(argv[1])
    new_doc = load(new_path)
    schema = new_doc.get("schema")
    if schema == TOPOLOGY_SCHEMA:
        default_baseline = "BENCH_TOPOLOGY.json"
    elif schema == FAIRNESS_SCHEMA:
        default_baseline = "BENCH_FAIRNESS.json"
    elif schema == EXACT_SCHEMA:
        default_baseline = "BENCH_EXACT.json"
    else:
        default_baseline = "BENCH_ENGINES.json"
    base_path = (Path(argv[2]) if len(argv) == 3 else
                 Path(__file__).resolve().parent.parent / default_baseline)
    base_doc = load(base_path)
    if schema == TOPOLOGY_SCHEMA:
        check_topology(new_doc, base_doc, new_path, base_path)
    elif schema == FAIRNESS_SCHEMA:
        check_fairness(new_doc, base_doc, new_path, base_path)
    elif schema == EXACT_SCHEMA:
        check_exact(new_doc, base_doc, new_path, base_path)
    else:
        check_engines(new_doc, base_doc, new_path, base_path)
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
