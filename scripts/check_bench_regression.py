#!/usr/bin/env python3
"""Benchmark-regression gate for the engine throughput report.

Validates a fresh BENCH_ENGINES.json (schema ppk-bench-engines-v1) and
compares it against the committed baseline:

 1. Schema: required top-level keys, well-formed result rows, all four
    engines present for every (k, n) point.
 2. Claim: the batch engine sustains at least MIN_BATCH_SPEEDUP x the
    count engine's interactions/second at every measured point with
    k == 3 and n >= 1e5 (the headline o(1)-amortized claim; generous
    against the ~1000x actually measured).  Larger k is not gated: at
    k = 8 the |Q|^2 per-batch sampling cost has not amortized yet at
    n = 1e5 and the engines are merely comparable there.
 3. Regression: per (k, n), the batch engine's throughput did not drop
    more than MAX_REGRESSION below the baseline's batch throughput.
    Points absent from the baseline (e.g. smoke vs full grids) are
    skipped -- the gate compares like with like.

Usage:
  scripts/check_bench_regression.py NEW.json [BASELINE.json]

Baseline defaults to the committed BENCH_ENGINES.json.  Exits non-zero
with a reason on the first violated check.  Stdlib only.
"""

import json
import sys
from pathlib import Path

SCHEMA = "ppk-bench-engines-v1"
ENGINES = {"agent", "count", "jump", "batch"}
REQUIRED_TOP = {"schema", "bench", "git_rev", "smoke", "wall_cap_seconds",
                "seed", "machine", "results"}
REQUIRED_ROW = {"engine", "k", "n", "interactions", "effective", "seconds",
                "stabilized", "interactions_per_second"}
MIN_BATCH_SPEEDUP = 5.0       # vs count engine, at k == SPEEDUP_K, n >= ...
SPEEDUP_K = 3
SPEEDUP_MIN_N = 100_000
MAX_REGRESSION = 0.20         # fractional drop vs baseline batch throughput


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")


def validate_schema(doc, path):
    missing = REQUIRED_TOP - doc.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if doc["schema"] != SCHEMA:
        fail(f"{path}: schema {doc['schema']!r}, expected {SCHEMA!r}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        fail(f"{path}: results must be a non-empty array")
    points = {}
    for i, row in enumerate(doc["results"]):
        missing = REQUIRED_ROW - row.keys()
        if missing:
            fail(f"{path}: results[{i}] missing {sorted(missing)}")
        if row["engine"] not in ENGINES:
            fail(f"{path}: results[{i}] unknown engine {row['engine']!r}")
        if row["seconds"] <= 0 or row["interactions_per_second"] <= 0:
            fail(f"{path}: results[{i}] non-positive measurement")
        points.setdefault((row["k"], row["n"]), {})[row["engine"]] = row
    for (k, n), rows in points.items():
        if set(rows) != ENGINES:
            fail(f"{path}: point (k={k}, n={n}) has engines {sorted(rows)}, "
                 f"expected all of {sorted(ENGINES)}")
    return points


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    new_path = Path(argv[1])
    base_path = (Path(argv[2]) if len(argv) == 3 else
                 Path(__file__).resolve().parent.parent / "BENCH_ENGINES.json")

    new_points = validate_schema(load(new_path), new_path)
    base_points = validate_schema(load(base_path), base_path)

    for (k, n), rows in sorted(new_points.items()):
        if k != SPEEDUP_K or n < SPEEDUP_MIN_N:
            continue
        batch = rows["batch"]["interactions_per_second"]
        count = rows["count"]["interactions_per_second"]
        speedup = batch / count
        if speedup < MIN_BATCH_SPEEDUP:
            fail(f"(k={k}, n={n}): batch is only {speedup:.2f}x the count "
                 f"engine ({batch:.3g} vs {count:.3g} int/s); the gate "
                 f"requires >= {MIN_BATCH_SPEEDUP}x")
        print(f"ok: (k={k}, n={n}) batch/count speedup {speedup:.1f}x")

    compared = 0
    for (k, n), rows in sorted(new_points.items()):
        base = base_points.get((k, n))
        if base is None:
            print(f"skip: (k={k}, n={n}) not in baseline grid")
            continue
        new_tp = rows["batch"]["interactions_per_second"]
        base_tp = base["batch"]["interactions_per_second"]
        drop = 1.0 - new_tp / base_tp
        if drop > MAX_REGRESSION:
            fail(f"(k={k}, n={n}): batch throughput dropped "
                 f"{drop:.0%} vs baseline ({new_tp:.3g} vs {base_tp:.3g} "
                 f"int/s); the gate allows {MAX_REGRESSION:.0%}")
        print(f"ok: (k={k}, n={n}) batch throughput {new_tp:.3g} int/s "
              f"({-drop:+.0%} vs baseline)")
        compared += 1
    if compared == 0:
        fail("no (k, n) point overlapped the baseline -- nothing was gated")
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
