#!/usr/bin/env bash
# Builds the API reference and enforces the documentation gates.
#
# Usage:
#   scripts/build_docs.sh [--out DIR]
#
#   --out   doxygen output directory (default: build/docs)
#
# Two stages:
#  1. Doc-coverage gate (always runs, stdlib Python only): every public
#     symbol in src/obs/*.hpp and src/pp/stability.hpp must carry a
#     documentation comment.  This is the hard gate -- it fails the script.
#  2. Doxygen HTML (runs only when doxygen is installed; the toolchain
#     image does not carry it, CI installs it in the docs job).  The
#     Doxyfile is generated here so there is nothing to keep in sync;
#     warnings are promoted to errors for the gated headers.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${repo_root}/build/docs"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) out_dir="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

echo "== doc-coverage gate =="
python3 "${repo_root}/scripts/check_doc_coverage.py"

if ! command -v doxygen >/dev/null 2>&1; then
  echo "== doxygen not installed; skipping HTML generation (gate above" \
       "still enforced) =="
  exit 0
fi

mkdir -p "${out_dir}"
doxyfile="${out_dir}/Doxyfile"
cat > "${doxyfile}" <<EOF
PROJECT_NAME           = "ppk"
PROJECT_BRIEF          = "Uniform k-partition population protocol toolkit"
OUTPUT_DIRECTORY       = ${out_dir}
INPUT                  = ${repo_root}/src
FILE_PATTERNS          = *.hpp
RECURSIVE              = YES
EXTRACT_ALL            = YES
GENERATE_HTML          = YES
GENERATE_LATEX         = NO
QUIET                  = YES
WARN_IF_UNDOCUMENTED   = NO
WARN_AS_ERROR          = NO
FULL_PATH_NAMES        = YES
STRIP_FROM_PATH        = ${repo_root}
MACRO_EXPANSION        = YES
PREDEFINED             = PPK_OBS_ENABLED=1
EOF

echo "== doxygen =="
doxygen "${doxyfile}"
echo "== wrote ${out_dir}/html/index.html =="
