#!/usr/bin/env python3
"""Render the figure benches' CSV output as SVG plots -- stdlib only.

The cluster machines this repo targets have no matplotlib/gnuplot, so this
is a minimal scatter/line plotter good enough to eyeball the paper's
shapes (Figures 3-6).

Usage:
  build/bench/fig3_interactions_vs_n --csv fig3.csv
  scripts/plot_figures.py fig3 fig3.csv fig3.svg
  # likewise: fig4, fig5 (log-log), fig6 (semi-log-y)
"""

import csv
import math
import sys

WIDTH, HEIGHT = 720, 480
MARGIN = 70
COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]


def read_series(path, x_col, y_col, group_col):
    """Returns {group: [(x, y), ...]} sorted by x."""
    series = {}
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            try:
                x = float(row[x_col])
                y = float(row[y_col])
            except (KeyError, ValueError):
                continue
            series.setdefault(row.get(group_col, ""), []).append((x, y))
    for points in series.values():
        points.sort()
    return series


def nice_ticks(lo, hi, count=6):
    if hi <= lo:
        hi = lo + 1
    raw = (hi - lo) / count
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            break
    step *= magnitude
    start = math.floor(lo / step) * step
    ticks = []
    value = start
    while value <= hi + step * 0.5:
        if value >= lo - step * 0.5:
            ticks.append(value)
        value += step
    return ticks


class Plot:
    def __init__(self, title, x_label, y_label, log_x=False, log_y=False):
        self.title, self.x_label, self.y_label = title, x_label, y_label
        self.log_x, self.log_y = log_x, log_y
        self.parts = []

    def _transform(self, value, log):
        return math.log10(value) if log else value

    def render(self, series, out_path):
        xs = [self._transform(x, self.log_x)
              for pts in series.values() for x, _ in pts]
        ys = [self._transform(y, self.log_y)
              for pts in series.values() for _, y in pts]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi += 1
        if y_hi == y_lo:
            y_hi += 1

        def sx(x):
            return MARGIN + (x - x_lo) / (x_hi - x_lo) * (WIDTH - 2 * MARGIN)

        def sy(y):
            return HEIGHT - MARGIN - (y - y_lo) / (y_hi - y_lo) * (
                HEIGHT - 2 * MARGIN)

        add = self.parts.append
        add(f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
            f'height="{HEIGHT}" font-family="sans-serif" font-size="12">')
        add(f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>')
        add(f'<text x="{WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-size="16">{self.title}</text>')

        # Axes and ticks.
        add(f'<line x1="{MARGIN}" y1="{HEIGHT - MARGIN}" x2="{WIDTH - MARGIN}"'
            f' y2="{HEIGHT - MARGIN}" stroke="black"/>')
        add(f'<line x1="{MARGIN}" y1="{MARGIN}" x2="{MARGIN}" '
            f'y2="{HEIGHT - MARGIN}" stroke="black"/>')
        for tick in nice_ticks(x_lo, x_hi):
            px = sx(tick)
            label = f"1e{tick:g}" if self.log_x else f"{tick:g}"
            add(f'<line x1="{px}" y1="{HEIGHT - MARGIN}" x2="{px}" '
                f'y2="{HEIGHT - MARGIN + 5}" stroke="black"/>')
            add(f'<text x="{px}" y="{HEIGHT - MARGIN + 20}" '
                f'text-anchor="middle">{label}</text>')
        for tick in nice_ticks(y_lo, y_hi):
            py = sy(tick)
            label = f"1e{tick:g}" if self.log_y else f"{tick:g}"
            add(f'<line x1="{MARGIN - 5}" y1="{py}" x2="{MARGIN}" y2="{py}" '
                f'stroke="black"/>')
            add(f'<text x="{MARGIN - 8}" y="{py + 4}" '
                f'text-anchor="end">{label}</text>')
        add(f'<text x="{WIDTH / 2}" y="{HEIGHT - 12}" '
            f'text-anchor="middle">{self.x_label}</text>')
        add(f'<text x="18" y="{HEIGHT / 2}" text-anchor="middle" '
            f'transform="rotate(-90 18 {HEIGHT / 2})">{self.y_label}</text>')

        # Series.
        for index, (name, points) in enumerate(sorted(series.items())):
            color = COLORS[index % len(COLORS)]
            path = " ".join(
                f"{'M' if i == 0 else 'L'}"
                f"{sx(self._transform(x, self.log_x)):.1f},"
                f"{sy(self._transform(y, self.log_y)):.1f}"
                for i, (x, y) in enumerate(points))
            add(f'<path d="{path}" fill="none" stroke="{color}" '
                f'stroke-width="1.5"/>')
            for x, y in points:
                add(f'<circle cx="{sx(self._transform(x, self.log_x)):.1f}" '
                    f'cy="{sy(self._transform(y, self.log_y)):.1f}" r="2.5" '
                    f'fill="{color}"/>')
            ly = MARGIN + 16 * index
            add(f'<rect x="{WIDTH - MARGIN - 110}" y="{ly - 9}" width="12" '
                f'height="12" fill="{color}"/>')
            add(f'<text x="{WIDTH - MARGIN - 92}" y="{ly + 2}">'
                f'{self.x_label.split()[0]}-group {name}</text>')
        add("</svg>")
        with open(out_path, "w") as handle:
            handle.write("\n".join(self.parts))
        print(f"wrote {out_path}")


FIGURES = {
    # name: (x_col, y_col, group_col, title, x, y, log_x, log_y)
    "fig3": ("n", "mean_interactions", "k",
             "Figure 3: interactions vs n", "n", "interactions",
             False, False),
    "fig4": ("n", "mean_increment", "grouping_index",
             "Figure 4: per-grouping increments", "n", "NI'_i",
             False, False),
    "fig5": ("n", "mean_interactions", "k",
             "Figure 5: interactions vs n (n mod k = 0)", "n",
             "interactions", True, True),
    "fig6": ("k", "mean_interactions", "n",
             "Figure 6: interactions vs k at n = 960", "k",
             "interactions", False, True),
}


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in FIGURES:
        names = ", ".join(FIGURES)
        sys.exit(f"usage: plot_figures.py <{names}> <in.csv> <out.svg>")
    figure, csv_path, svg_path = sys.argv[1:]
    x_col, y_col, group_col, title, xl, yl, log_x, log_y = FIGURES[figure]
    series = read_series(csv_path, x_col, y_col, group_col)
    if not series:
        sys.exit(f"no data rows with columns {x_col}/{y_col} in {csv_path}")
    Plot(title, xl, yl, log_x, log_y).render(series, svg_path)


if __name__ == "__main__":
    main()
