// Scenario from the paper's introduction: "reducing the energy consumption
// of the whole system by switching on some groups and switching off the
// others."
//
// A field of battery-powered sensors must keep ~coverage/k of the nodes
// awake at any time.  Nodes are anonymous, know neither n nor any identity,
// and communicate only by chance pairwise radio contact -- exactly the
// population protocol model.  The k-partition protocol self-organizes the
// field into k duty-cycle shifts; we then simulate a day of rotating shifts
// and report the battery savings versus always-on operation.
//
//   ./sensor_duty_cycling [--sensors 120] [--shifts 4] [--seed 7]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"

namespace {

struct ShiftPlan {
  std::vector<int> shift_of_sensor;
  std::vector<std::uint32_t> shift_sizes;
  std::uint64_t interactions = 0;
};

ShiftPlan organize_shifts(std::uint32_t sensors, ppk::pp::GroupId shifts,
                          std::uint64_t seed) {
  const ppk::core::KPartitionProtocol protocol(shifts);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Population population(sensors, protocol.num_states(),
                                 protocol.initial_state());
  ppk::pp::AgentSimulator sim(table, std::move(population), seed);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, sensors);
  const auto result = sim.run(*oracle);

  ShiftPlan plan;
  plan.interactions = result.interactions;
  plan.shift_sizes = sim.population().group_sizes(protocol);
  plan.shift_of_sensor.reserve(sensors);
  for (std::uint32_t s = 0; s < sensors; ++s) {
    plan.shift_of_sensor.push_back(
        protocol.group(sim.population().state_of(s)));
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("sensor_duty_cycling",
               "Self-organizing duty-cycle shifts for a sensor field.");
  auto sensors_flag = cli.flag<int>("sensors", 120, "number of sensors");
  auto shifts_flag = cli.flag<int>("shifts", 4, "number of duty shifts (k)");
  auto seed = cli.flag<long long>("seed", 7, "RNG seed");
  cli.parse(argc, argv);
  const auto sensors = static_cast<std::uint32_t>(*sensors_flag);
  const auto shifts = static_cast<ppk::pp::GroupId>(*shifts_flag);

  std::printf("organizing %u sensors into %d shifts...\n", sensors,
              int{shifts});
  const ShiftPlan plan =
      organize_shifts(sensors, shifts, static_cast<std::uint64_t>(*seed));
  std::printf("converged after %llu pairwise radio contacts\n",
              static_cast<unsigned long long>(plan.interactions));

  for (std::size_t g = 0; g < plan.shift_sizes.size(); ++g) {
    std::printf("  shift %zu: %u sensors\n", g + 1, plan.shift_sizes[g]);
  }

  // Simulate 24 hours of rotating shifts: shift g is awake during hours
  // where hour mod k == g.  Awake costs 12 mW, asleep 0.4 mW.
  constexpr double kAwakeMilliwatts = 12.0;
  constexpr double kAsleepMilliwatts = 0.4;
  double duty_energy = 0.0;   // mWh across the field
  double always_energy = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const int awake_shift = hour % shifts;
    for (std::uint32_t s = 0; s < sensors; ++s) {
      duty_energy += plan.shift_of_sensor[s] == awake_shift
                         ? kAwakeMilliwatts
                         : kAsleepMilliwatts;
      always_energy += kAwakeMilliwatts;
    }
  }
  std::printf("24h energy, always-on : %.1f mWh\n", always_energy);
  std::printf("24h energy, duty-cycle: %.1f mWh (%.1fx lifetime)\n",
              duty_energy, always_energy / duty_energy);

  // Coverage check: the awake fraction is within one sensor of n/k at all
  // times, by the uniformity guarantee.
  std::uint32_t min_awake = sensors;
  std::uint32_t max_awake = 0;
  for (auto size : plan.shift_sizes) {
    min_awake = std::min(min_awake, size);
    max_awake = std::max(max_awake, size);
  }
  std::printf("awake sensors per hour: %u..%u (target %u)\n", min_awake,
              max_awake, sensors / shifts);
  return 0;
}
