// Replays the worked examples of the paper's Figures 1 and 2 and prints
// each configuration, so the narrative of Section 3 can be followed on a
// real execution.
//
// Figure 1 (n = 6, k = 6) is specified interaction-by-interaction in the
// text and is replayed verbatim.  Figure 2's starting configuration is not
// fully listed in the text, so the D-state rollback it illustrates is
// reconstructed: a build that reached m4 alongside a second builder m2,
// the two builders cancelling into d3/d1 (transition 8), and the
// demolishers returning every group member to `initial` (transitions 9-10).

#include <cstdio>
#include <vector>

#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/trace.hpp"
#include "pp/transition_table.hpp"

namespace {

using Schedule = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

void show(const ppk::core::KPartitionProtocol& protocol,
          const ppk::pp::AgentSimulator& sim, const char* caption) {
  std::printf("  %-34s %s\n", caption,
              ppk::pp::format_agents(protocol, sim.population()).c_str());
}

void replay(const ppk::core::KPartitionProtocol& protocol,
            ppk::pp::AgentSimulator& sim, const Schedule& schedule,
            const char* caption) {
  sim.replay(schedule);
  show(protocol, sim, caption);
}

}  // namespace

int main() {
  const ppk::core::KPartitionProtocol protocol(6);
  const ppk::pp::TransitionTable table(protocol);

  std::printf("=== Figure 1: the basic build chain (n = 6, k = 6) ===\n");
  {
    ppk::pp::AgentSimulator sim(
        table, ppk::pp::Population(6, protocol.num_states(),
                                   protocol.initial_state()),
        0);
    show(protocol, sim, "(a) all initial");
    replay(protocol, sim, {{0, 1}, {2, 3}, {4, 5}},
           "(b) after (a1,a2)(a3,a4)(a5,a6)");
    replay(protocol, sim, {{0, 5}, {1, 2}, {3, 4}},
           "(c) after (a1,a6)(a2,a3)(a4,a5)");
    replay(protocol, sim, {{4, 5}}, "(d) after (a5,a6)");
    replay(protocol, sim, {{0, 5}}, "(e) after (a1,a6): g1 + m2 born");
    replay(protocol, sim, {{5, 1}, {5, 2}, {5, 3}, {5, 4}},
           "(f) after (a6,a2)..(a6,a5)");
    std::printf("  -> one agent per group: the build chain g1..g6 is "
                "complete.\n\n");
  }

  std::printf("=== Figure 2: D states roll a wedged build back ===\n");
  {
    ppk::pp::AgentSimulator sim(
        table, ppk::pp::Population(6, protocol.num_states(),
                                   protocol.initial_state()),
        0);
    // Build the wedge: a5 reaches m4 (having built g1, g2, g3), and a6
    // starts a second build (m2 with its g1).
    sim.replay({{4, 5},          // a5, a6 -> initial'
                {4, 0},          // (initial', initial): a5 -> m2, a1 -> g1
                {4, 1},          // a5 -> m3, a2 -> g2
                {4, 2},          // a5 -> m4, a3 -> g3
                {5, 3}});        // a6 -> m2, a4 -> g1
    show(protocol, sim, "(a) two builders, no free agents");
    // Transitions 1-7 are all disabled now; only rule 8 can fire.
    replay(protocol, sim, {{4, 5}}, "(b) after (a5,a6): m4+m2 -> d3+d1");
    replay(protocol, sim, {{5, 3}}, "(c) after (a6,a4): d1+g1 -> initial x2");
    replay(protocol, sim, {{4, 2}}, "(d) after (a5,a3): d3+g3 -> d2");
    replay(protocol, sim, {{4, 1}}, "(e) after (a5,a2): d2+g2 -> d1");
    replay(protocol, sim, {{4, 0}}, "(f) after (a5,a1): d1+g1 -> initial x2");
    std::printf("  -> every agent is free again; the population can retry "
                "and, under\n     global fairness, eventually builds a full "
                "g1..g6 set.\n");
  }
  return 0;
}
