// Observability end to end: one k-partition run under a fully wired
// metrics stack, printing where the protocol spends its interactions.
//
// The run uses the count engine with an ObsSink bound to a MetricsRegistry
// and a ConvergenceTimeline, plus the watch-mark instrumentation on g_k
// (the paper's NI'_i accounting: grouping i is complete when the count of
// the final member state g_k reaches i).  The console output shows
//
//  * the per-grouping phase breakdown -- interactions spent completing
//    each grouping and in the tail after the last one, the single-run
//    version of the paper's Figure 4,
//  * a sampled group-size trajectory from the timeline,
//  * engine counters (drawn/effective interactions) from the registry,
//  * a wall-clock phase profile (setup / simulate / report).
//
// --json writes the full machine-readable bundle: parameters, result,
// every counter/gauge/histogram, the timeline samples, and the phase
// table.  The bundle is a deterministic function of (n, k, seed, stride) --
// wall-clock times are deliberately excluded (they are printed to stdout
// only), so two runs with the same flags emit byte-identical JSON.  The
// test suite and docs/observability.md rely on that property.
//
//   ./observed_run [--n 120] [--k 4] [--seed 7] [--stride 0] [--json out.json]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "pp/count_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"

namespace {

struct Phase {
  std::string name;
  std::uint64_t interactions;
};

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("observed_run",
               "One observed k-partition run: metrics, timeline, and the "
               "per-grouping phase breakdown.");
  auto n_flag = cli.flag<int>("n", 120, "population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  auto seed = cli.flag<long long>("seed", 7, "RNG seed");
  auto stride_flag = cli.flag<long long>(
      "stride", 0, "timeline sampling stride in interactions (0 = auto)");
  auto json_path = cli.flag<std::string>(
      "json", "", "write the deterministic metrics bundle to this path");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);

  ppk::obs::PhaseProfile wall_profile;
  ppk::obs::PhaseTimer wall(wall_profile);

  wall.enter("setup");
  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;

  const std::uint64_t stride =
      *stride_flag > 0 ? static_cast<std::uint64_t>(*stride_flag)
                       : std::max<std::uint64_t>(
                             1, static_cast<std::uint64_t>(n) * n / 64);

  ppk::obs::MetricsRegistry registry;
  ppk::obs::ConvergenceTimeline timeline(protocol, stride);
  ppk::obs::ObsSink sink(registry, &timeline);
  timeline.seed(initial);

  ppk::pp::CountSimulator sim(table, initial,
                              static_cast<std::uint64_t>(*seed));
  std::vector<std::uint64_t> marks;  // i-th entry: grouping i+1 completed
  sim.set_watch(protocol.g(k), &marks);
  sim.set_obs_sink(&sink);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);

  wall.enter("simulate");
  const auto result = sim.run(*oracle);
  timeline.finish(sim.interactions(), sim.counts(), result.effective);
  wall.enter("report");

  // Per-grouping phases from the watch marks: grouping i spans from the
  // (i-1)-th completion to the i-th, the tail from the last completion to
  // stabilization (free-agent cleanup; Lemma 5's regime).
  std::vector<Phase> phases;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < marks.size(); ++i) {
    phases.push_back(
        {"grouping_" + std::to_string(i + 1), marks[i] - prev});
    prev = marks[i];
  }
  phases.push_back({"tail", result.interactions - prev});
  for (const auto& phase : phases) {
    registry.counter("phase." + phase.name).inc(phase.interactions);
  }

  std::printf("=== observed run: n = %u, k = %u, seed = %lld ===\n\n", n,
              static_cast<unsigned>(k), static_cast<long long>(*seed));
  std::printf("stabilized: %s after %llu interactions (%llu effective)\n",
              result.stabilized ? "yes" : "NO",
              static_cast<unsigned long long>(result.interactions),
              static_cast<unsigned long long>(result.effective));

  std::vector<std::uint32_t> group_sizes(protocol.num_groups(), 0);
  for (ppk::pp::StateId s = 0; s < sim.counts().size(); ++s) {
    group_sizes[protocol.group(s)] += sim.counts()[s];
  }
  std::printf("final group sizes:");
  for (auto g : group_sizes) std::printf(" %u", g);
  std::printf("\n\n");

  std::printf("phase breakdown (interactions per grouping, the single-run "
              "Figure 4):\n");
  for (const auto& phase : phases) {
    const double share = result.interactions == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(phase.interactions) /
                                   static_cast<double>(result.interactions);
    std::printf("  %-12s %12llu  %5.1f%%\n", phase.name.c_str(),
                static_cast<unsigned long long>(phase.interactions), share);
  }

  std::printf("\ntimeline (%zu samples, stride %llu):\n",
              timeline.samples().size(),
              static_cast<unsigned long long>(stride));
  const auto& samples = timeline.samples();
  const std::size_t step = std::max<std::size_t>(1, samples.size() / 12);
  std::printf("  %12s  %8s  groups\n", "interaction", "spread");
  for (std::size_t i = 0; i < samples.size(); i += step) {
    const auto& sample = samples[i];
    std::printf("  %12llu  %8u ",
                static_cast<unsigned long long>(sample.interaction),
                sample.spread);
    for (auto g : sample.group_sizes) std::printf(" %4u", g);
    std::printf("\n");
  }

  std::printf("\nwall-clock profile (excluded from the JSON bundle -- it "
              "would break determinism):\n");
  wall.stop();
  wall_profile.print(std::cout);

  if (!json_path->empty()) {
    std::ofstream out(*json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    ppk::io::JsonWriter json(out);
    json.begin_object();
    json.member("schema", "ppk-observed-run-v1");
    json.key("params");
    json.begin_object();
    json.member("n", static_cast<std::uint64_t>(n));
    json.member("k", static_cast<std::uint64_t>(k));
    json.member("seed", static_cast<std::int64_t>(*seed));
    json.member("stride", stride);
    json.member("engine", "count");
    json.end_object();
    json.key("result");
    json.begin_object();
    json.member("interactions", result.interactions);
    json.member("effective", result.effective);
    json.member("stabilized", result.stabilized);
    json.key("group_sizes");
    json.begin_array();
    for (auto g : group_sizes) json.value(g);
    json.end_array();
    json.end_object();
    json.key("phases");
    json.begin_array();
    for (const auto& phase : phases) {
      json.begin_object();
      json.member("phase", phase.name);
      json.member("interactions", phase.interactions);
      json.end_object();
    }
    json.end_array();
    json.key("metrics");
    registry.write_json(json);
    json.key("timeline");
    timeline.write_json(json);
    json.end_object();
    out << '\n';
    std::printf("\nmetrics bundle written to %s\n", json_path->c_str());
  }
  return 0;
}
