// Quorum sensing with the threshold protocol: a swarm of anonymous
// molecular robots (the paper's second motivating application domain)
// must decide -- with no counting infrastructure -- whether at least T of
// them have detected a pathogen, and only then activate.
//
// Each detection is a unit token; tokens merge pairwise with saturation at
// T, and the verdict spreads epidemically (protocols/threshold.hpp).  All
// robots stabilize to the same, correct verdict under global fairness.
//
//   ./quorum_sensing [--robots 80] [--detections 12] [--quorum 10]

#include <cstdio>

#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "protocols/threshold.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("quorum_sensing",
               "Distributed quorum detection via the threshold protocol.");
  auto robots_flag = cli.flag<int>("robots", 80, "swarm size");
  auto detections_flag =
      cli.flag<int>("detections", 12, "robots that detected the pathogen");
  auto quorum_flag = cli.flag<int>("quorum", 10, "activation quorum T");
  auto seed = cli.flag<long long>("seed", 21, "RNG seed");
  cli.parse(argc, argv);
  const auto robots = static_cast<std::uint32_t>(*robots_flag);
  const auto detections = static_cast<std::uint32_t>(*detections_flag);
  const auto quorum = static_cast<std::uint32_t>(*quorum_flag);

  const ppk::protocols::ThresholdProtocol protocol(quorum);
  const ppk::pp::TransitionTable table(protocol);
  std::printf("%s: %d states per robot\n", protocol.name().c_str(),
              int{protocol.num_states()});
  std::printf("%u robots, %u detections, quorum %u -> expected verdict: %s\n",
              robots, detections, quorum,
              detections >= quorum ? "ACTIVATE" : "stand down");

  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = robots - detections;
  initial[protocol.one_state()] += detections;

  ppk::pp::AgentSimulator sim(table, ppk::pp::Population(initial),
                              static_cast<std::uint64_t>(*seed));
  // The threshold protocol stabilizes its outputs but is not silent below
  // the quorum (the leftover token keeps hopping), so run a fixed budget
  // and read the stabilized outputs.
  ppk::pp::NeverStableOracle oracle;
  sim.run(oracle, 200ULL * robots * robots);

  const auto sizes = sim.population().group_sizes(protocol);
  std::printf("robot outputs: %u say ACTIVATE, %u say stand down\n", sizes[1],
              sizes[0]);
  const bool unanimous = sizes[0] == 0 || sizes[1] == 0;
  const bool correct =
      (detections >= quorum) == (sizes[1] == robots);
  std::printf("unanimous: %s; matches ground truth: %s\n",
              unanimous ? "yes" : "no", correct ? "yes" : "no");
  return 0;
}
