// Quickstart: partition 50 anonymous agents into 5 uniform groups with the
// paper's 3k-2-state protocol and print what happened.
//
//   ./quickstart [--n 50] [--k 5] [--seed 1]

#include <cstdio>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("quickstart", "Uniform k-partition of a small population.");
  auto n_flag = cli.flag<int>("n", 50, "population size (>= 3)");
  auto k_flag = cli.flag<int>("k", 5, "number of groups (>= 2)");
  auto seed = cli.flag<long long>("seed", 1, "RNG seed");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);

  // 1. Build the protocol and its cached transition table.
  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  std::printf("protocol %s: %d states per agent (3k-2), symmetric: %s\n",
              protocol.name().c_str(), int{protocol.num_states()},
              table.is_symmetric() ? "yes" : "no");

  // 2. All agents start in the designated initial state.
  ppk::pp::Population population(n, protocol.num_states(),
                                 protocol.initial_state());

  // 3. Run random pairwise interactions until the configuration is stable
  //    (the uniform-random scheduler is globally fair with probability 1).
  ppk::pp::AgentSimulator sim(table, std::move(population),
                              static_cast<std::uint64_t>(*seed));
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const ppk::pp::SimResult result = sim.run(*oracle);

  std::printf("stabilized after %llu interactions (%llu effective)\n",
              static_cast<unsigned long long>(result.interactions),
              static_cast<unsigned long long>(result.effective));

  // 4. Read out the partition.
  const auto sizes = sim.population().group_sizes(protocol);
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    std::printf("  group %zu: %u agents\n", g + 1, sizes[g]);
  }
  std::printf("uniform (sizes differ by <= 1): %s\n",
              ppk::pp::is_uniform_partition(sizes) ? "yes" : "no");

  // Individual assignments are available per agent:
  std::printf("agent 0 is in group %d (state %s)\n",
              protocol.group(sim.population().state_of(0)) + 1,
              protocol.state_name(sim.population().state_of(0)).c_str());
  return 0;
}
