// Population dynamics: what happens to the partition when the population
// changes *after* stabilization?  (The paper's motivation cites
// fault-tolerance [14]; this example shows precisely how far the protocol
// gets for free and where it genuinely breaks.)
//
//  * Agents JOINING in the designated initial state are absorbed
//    gracefully: a locked-in group set is never undone, the newcomers run
//    fresh builds and the population re-stabilizes to the uniform
//    partition of the larger n.
//  * Agents LEAVING (crashes) break the protocol: the departed agents'
//    group slots are lost, and with them the Lemma 1 bookkeeping -- the
//    protocol has designated initial states and is not self-stabilizing,
//    so the remaining population can be stuck in a non-uniform partition
//    forever.  The example demonstrates the failure honestly.
//
//   ./fault_recovery [--n 40] [--k 4] [--join 10] [--crash 7] [--seed 2]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/trace.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

void print_sizes(const char* label,
                 const std::vector<std::uint32_t>& sizes) {
  std::printf("%-36s", label);
  for (auto size : sizes) std::printf(" %3u", size);
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  std::printf("   (spread %u)\n", *hi - *lo);
}

ppk::pp::SimResult stabilize(ppk::pp::AgentSimulator& sim,
                             const ppk::core::KPartitionProtocol& protocol) {
  auto oracle =
      ppk::core::stable_pattern_oracle(protocol, sim.population().size());
  return sim.run(*oracle, 500'000'000ULL);
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("fault_recovery",
               "Joins are absorbed; crashes break the partition.");
  auto n_flag = cli.flag<int>("n", 40, "initial population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  auto join_flag = cli.flag<int>("join", 10, "agents joining after "
                                             "stabilization");
  auto crash_flag = cli.flag<int>("crash", 7, "agents crashing in part 2");
  auto seed = cli.flag<long long>("seed", 2, "RNG seed");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);
  const auto joiners = static_cast<std::uint32_t>(*join_flag);
  const auto crashers = static_cast<std::uint32_t>(*crash_flag);

  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);

  std::printf("=== Part 1: %u agents join after stabilization ===\n", joiners);
  {
    ppk::pp::AgentSimulator sim(
        table,
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        static_cast<std::uint64_t>(*seed));
    auto first = stabilize(sim, protocol);
    std::printf("initial stabilization: %llu interactions\n",
                static_cast<unsigned long long>(first.interactions));
    print_sizes("  partition of n:", sim.population().group_sizes(protocol));

    // Rebuild a larger population carrying over every agent's state; the
    // joiners enter in the designated initial state.
    ppk::pp::Counts carried = sim.population().counts();
    carried[protocol.initial_state()] += joiners;
    ppk::pp::AgentSimulator grown(table, ppk::pp::Population(carried),
                                  static_cast<std::uint64_t>(*seed) + 1);
    auto second = stabilize(grown, protocol);
    std::printf("re-stabilization after join: %llu interactions (%s)\n",
                static_cast<unsigned long long>(second.interactions),
                second.stabilized ? "stable" : "NOT stable");
    print_sizes("  partition of n + join:",
                grown.population().group_sizes(protocol));
  }

  std::printf("\n=== Part 2: %u agents crash after stabilization ===\n",
              crashers);
  {
    ppk::pp::AgentSimulator sim(
        table,
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        static_cast<std::uint64_t>(*seed) + 2);
    stabilize(sim, protocol);
    print_sizes("  partition before crash:",
                sim.population().group_sizes(protocol));

    // Remove agents 0..crashers-1 (whatever groups they landed in).
    ppk::pp::Counts survivors = sim.population().counts();
    for (std::uint32_t a = 0; a < crashers; ++a) {
      --survivors[sim.population().state_of(a)];
    }
    ppk::pp::AgentSimulator after(table, ppk::pp::Population(survivors),
                                  static_cast<std::uint64_t>(*seed) + 3);
    // Give it a generous budget with the survivors' stable pattern as the
    // goal; the protocol cannot reach it (group members never re-balance).
    auto oracle = ppk::core::stable_pattern_oracle(
        protocol, after.population().size());
    const auto result = after.run(*oracle, 20'000'000ULL);
    std::printf("recovery attempt: %s after %llu interactions\n",
                result.stabilized ? "recovered (lucky crash pattern)"
                                  : "NOT recovered (expected)",
                static_cast<unsigned long long>(result.interactions));
    print_sizes("  partition after crash:",
                after.population().group_sizes(protocol));
    std::printf(
        "\nWhy: committed agents (g states) never change groups, so the\n"
        "survivors cannot re-balance -- the protocol assumes designated\n"
        "initial states and is not self-stabilizing.  Fault tolerance\n"
        "requires either re-initializing all agents or a protocol like\n"
        "Delporte-Gallet et al. [14] that trades exactness for it.\n");
  }
  return 0;
}
