// Population dynamics: what happens to the partition when the population
// changes *after* stabilization?  (The paper's motivation cites
// fault-tolerance [14]; this example shows precisely how far the protocol
// gets for free, where it genuinely breaks, and what the repo's recovery
// layer adds.)  Built on the fault-injection subsystem (pp/faults.hpp).
//
//  * Part 1 -- agents JOINING in the designated initial state are absorbed
//    gracefully: a locked-in group set is never undone, the newcomers run
//    fresh builds and the population re-stabilizes to the uniform
//    partition of the larger n.  No recovery machinery needed.
//  * Part 2 -- agents LEAVING (crashes) break the bare protocol: the
//    departed agents' group slots are lost, and with them the Lemma 1
//    bookkeeping -- the protocol has designated initial states and is not
//    self-stabilizing, so the survivors stay stuck in a non-uniform
//    partition until the interaction budget runs out.  The example
//    demonstrates the failure honestly; the budget (not a hang) ends it.
//  * Part 3 -- the same crash under the self-healing wrapper
//    (core/recovery.hpp): the RecoveryManager seeds an epoch-reset wave,
//    every survivor restarts as an initial agent of the new epoch, and the
//    population re-converges to the uniform partition of the surviving n.
//
//   ./fault_recovery [--n 40] [--k 4] [--join 10] [--crash 7] [--seed 3]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recovery.hpp"
#include "pp/faults.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"

namespace {

void print_sizes(const char* label,
                 const std::vector<std::uint32_t>& sizes) {
  std::printf("%-36s", label);
  for (auto size : sizes) std::printf(" %3u", size);
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  std::printf("   (spread %u)\n", *hi - *lo);
}

/// A schedule that crashes `count` agents at interaction `at` (targets
/// resolved uniformly by the engine's fault stream).
std::vector<ppk::pp::FaultEvent> crash_burst(std::uint64_t at,
                                             std::uint32_t count) {
  std::vector<ppk::pp::FaultEvent> schedule;
  for (std::uint32_t i = 0; i < count; ++i) {
    ppk::pp::FaultEvent event;
    event.at = at;
    event.kind = ppk::pp::FaultKind::kCrash;
    schedule.push_back(event);
  }
  return schedule;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("fault_recovery",
               "Joins are absorbed; crashes break the bare protocol; the "
               "self-healing layer repairs them.");
  auto n_flag = cli.flag<int>("n", 40, "initial population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  auto join_flag = cli.flag<int>("join", 10, "agents joining after "
                                             "stabilization");
  auto crash_flag = cli.flag<int>("crash", 7, "agents crashing in parts 2-3");
  auto seed_flag = cli.flag<long long>("seed", 3, "RNG seed");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);
  const auto joiners = static_cast<std::uint32_t>(*join_flag);
  const auto crashers = static_cast<std::uint32_t>(*crash_flag);
  const auto seed = static_cast<std::uint64_t>(*seed_flag);

  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  // Big enough to let faults fire after stabilization, small enough that a
  // genuinely stuck run ends promptly.
  constexpr std::uint64_t kBudget = 20'000'000ULL;
  // All schedules fire here -- comfortably after the ~n log n stabilization.
  constexpr std::uint64_t kFaultAt = 200'000ULL;

  std::printf("=== Part 1: %u agents join after stabilization ===\n", joiners);
  {
    ppk::pp::ChurnSimulator sim(
        table,
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        seed);
    std::vector<ppk::pp::FaultEvent> schedule;
    for (std::uint32_t i = 0; i < joiners; ++i) {
      ppk::pp::FaultEvent event;
      event.at = kFaultAt;
      event.kind = ppk::pp::FaultKind::kJoin;
      schedule.push_back(event);
    }
    sim.set_schedule(std::move(schedule));
    sim.set_default_join_state(protocol.initial_state());
    const auto oracle = ppk::core::churn_aware_stable_oracle(protocol);
    const auto result = sim.run(*oracle, kBudget);
    std::printf("stabilized twice (before and after the joins): %s, "
                "%llu interactions total\n",
                result.stabilized ? "yes" : "NO",
                static_cast<unsigned long long>(result.interactions));
    print_sizes("  partition of n + join:",
                sim.population().group_sizes(protocol));
  }

  std::printf("\n=== Part 2: %u agents crash, bare protocol ===\n", crashers);
  {
    ppk::pp::ChurnSimulator sim(
        table,
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        seed + 1);
    sim.set_schedule(crash_burst(kFaultAt, crashers));
    const auto oracle = ppk::core::churn_aware_stable_oracle(protocol);
    const auto result = sim.run(*oracle, kBudget);
    std::printf("recovery attempt: %s after %llu interactions\n",
                result.stabilized ? "recovered (lucky crash pattern)"
                                  : "NOT recovered (expected; budget-bound)",
                static_cast<unsigned long long>(result.interactions));
    print_sizes("  partition after crash:",
                sim.population().group_sizes(protocol));
    std::printf("  Lemma 1 invariant: %s\n",
                ppk::core::lemma1_holds(protocol, sim.population().counts())
                    ? "holds"
                    : "BROKEN (crash destroyed the bookkeeping)");
    std::printf(
        "\nWhy: committed agents (g states) never change groups, so the\n"
        "survivors cannot re-balance -- the protocol assumes designated\n"
        "initial states and is not self-stabilizing.\n");
  }

  std::printf("\n=== Part 3: the same crash, self-healing layer ===\n");
  {
    const ppk::core::SelfHealingKPartitionProtocol healing(k);
    const ppk::pp::TransitionTable healing_table(healing);
    ppk::pp::ChurnSimulator sim(
        healing_table,
        ppk::pp::Population(n, healing.num_states(), healing.initial_state()),
        seed + 1);  // same pair stream as part 2
    sim.set_schedule(crash_burst(kFaultAt, crashers));
    ppk::core::RecoveryManager manager(healing, sim);
    const auto result = sim.run(manager.oracle(), kBudget);
    std::printf("recovery: %s after %llu interactions "
                "(%u reset wave%s)\n",
                result.stabilized ? "recovered" : "NOT recovered",
                static_cast<unsigned long long>(result.interactions),
                manager.waves_started(),
                manager.waves_started() == 1 ? "" : "s");
    print_sizes("  partition of the survivors:",
                sim.population().group_sizes(healing));
    std::printf(
        "\nHow: the RecoveryManager noticed the lost group slots and seeded\n"
        "ONE survivor with the next epoch; the reset spread epidemically\n"
        "(each interaction converts one more agent into a fresh initial\n"
        "agent of the new epoch), after which plain Algorithm 1 re-ran on\n"
        "the surviving population.  Detection is the harness's job --\n"
        "anonymous agents cannot observe departures -- but the repair\n"
        "itself is pure population-protocol dynamics.\n");
  }
  return 0;
}
