// ppk_sim: the general-purpose command-line front end to the library --
// pick a protocol by name, a population, a seed, and run it to
// stabilization, printing the outcome and (optionally) a trace.
//
//   ./ppk_sim --protocol kpartition --k 5 --n 100
//   ./ppk_sim --protocol leader --n 50
//   ./ppk_sim --protocol majority --x 30 --y 20
//   ./ppk_sim --protocol epidemic --n 100
//   ./ppk_sim --protocol bipartition --n 9 --trace
//
// Serves both as a usable tool and as the "kitchen sink" example of the
// public API: protocol construction, tables, oracles, observers.

#include <cstdio>
#include <memory>

#include "core/bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/trace.hpp"
#include "pp/transition_table.hpp"
#include "protocols/approximate_majority.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/modulo_counter.hpp"
#include "util/cli.hpp"

namespace {

struct Setup {
  std::unique_ptr<ppk::pp::Protocol> protocol;
  ppk::pp::Counts initial;
  // Null oracle factory means "use silence detection".
  std::function<std::unique_ptr<ppk::pp::StabilityOracle>(
      const ppk::pp::TransitionTable&)>
      make_oracle;
};

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("ppk_sim", "Run any bundled protocol to stabilization.");
  auto name = cli.flag<std::string>(
      "protocol", "kpartition",
      "kpartition | bipartition | leader | majority | epidemic | modcount");
  auto n_flag = cli.flag<int>("n", 60, "population size");
  auto k_flag = cli.flag<int>("k", 4, "groups (kpartition) / modulus "
                                      "(modcount)");
  auto x_flag = cli.flag<int>("x", 0, "majority: agents voting X "
                                      "(0 = n/2 + 1)");
  auto y_flag = cli.flag<int>("y", 0, "majority: agents voting Y "
                                      "(0 = rest)");
  auto seed = cli.flag<long long>("seed", 1, "RNG seed");
  auto trace = cli.flag<bool>("trace", false,
                              "print every effective interaction");
  auto budget = cli.flag<long long>("budget", 1'000'000'000,
                                    "max interactions");
  cli.parse(argc, argv);

  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);

  Setup setup;
  if (*name == "kpartition") {
    auto protocol = std::make_unique<ppk::core::KPartitionProtocol>(k);
    const auto* raw = protocol.get();
    setup.make_oracle = [raw, n](const ppk::pp::TransitionTable&) {
      return ppk::core::stable_pattern_oracle(*raw, n);
    };
    setup.protocol = std::move(protocol);
  } else if (*name == "bipartition") {
    setup.protocol = std::make_unique<ppk::core::BipartitionProtocol>();
    setup.make_oracle = [n](const ppk::pp::TransitionTable&) {
      // Bipartition == kpartition(2); reuse its stable pattern.
      static const ppk::core::KPartitionProtocol two(2);
      return ppk::core::stable_pattern_oracle(two, n);
    };
  } else if (*name == "leader") {
    setup.protocol = std::make_unique<ppk::protocols::LeaderElectionProtocol>();
  } else if (*name == "majority") {
    setup.protocol =
        std::make_unique<ppk::protocols::ApproximateMajorityProtocol>();
    const auto x = *x_flag > 0 ? static_cast<std::uint32_t>(*x_flag)
                               : n / 2 + 1;
    const auto y = *y_flag > 0 ? static_cast<std::uint32_t>(*y_flag) : n - x;
    setup.initial = ppk::pp::Counts{x, y, n - x - y};
  } else if (*name == "epidemic") {
    setup.protocol = std::make_unique<ppk::protocols::EpidemicProtocol>();
    setup.initial = ppk::pp::Counts{1, n - 1};
  } else if (*name == "modcount") {
    setup.protocol = std::make_unique<ppk::protocols::ModuloCounterProtocol>(
        static_cast<std::uint32_t>(*k_flag));
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n%s", name->c_str(),
                 cli.usage().c_str());
    return 2;
  }

  if (setup.initial.empty()) {
    setup.initial.assign(setup.protocol->num_states(), 0);
    setup.initial[setup.protocol->initial_state()] = n;
  }

  const ppk::pp::TransitionTable table(*setup.protocol);
  std::printf("protocol: %s (%d states, %s)\n",
              setup.protocol->name().c_str(),
              int{setup.protocol->num_states()},
              table.is_symmetric() ? "symmetric" : "asymmetric");
  std::printf("initial configuration: %s\n",
              ppk::pp::format_counts(*setup.protocol, setup.initial).c_str());

  ppk::pp::AgentSimulator sim(table, ppk::pp::Population(setup.initial),
                              static_cast<std::uint64_t>(*seed));
  ppk::pp::TraceRecorder recorder(*setup.protocol);
  if (*trace) sim.set_observer(recorder.observer());

  std::unique_ptr<ppk::pp::StabilityOracle> oracle =
      setup.make_oracle ? setup.make_oracle(table)
                        : std::make_unique<ppk::pp::SilenceOracle>(table);
  const auto result =
      sim.run(*oracle, static_cast<std::uint64_t>(*budget));

  if (*trace) std::fputs(recorder.to_string().c_str(), stdout);
  std::printf("%s after %llu interactions (%llu effective)\n",
              result.stabilized ? "stabilized" : "budget exhausted",
              static_cast<unsigned long long>(result.interactions),
              static_cast<unsigned long long>(result.effective));
  std::printf("final configuration: %s\n",
              ppk::pp::format_counts(*setup.protocol,
                                     sim.population().counts()).c_str());
  const auto sizes = sim.population().group_sizes(*setup.protocol);
  std::printf("group sizes:");
  for (auto size : sizes) std::printf(" %u", size);
  std::printf("\n");
  return result.stabilized ? 0 : 1;
}
