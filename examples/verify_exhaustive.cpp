// Exhaustive verification demo: decide the paper's Theorem 1 for a chosen
// (n, k) by exploring *every* reachable configuration and checking every
// bottom SCC -- and show that the "basic strategy" (transitions 1-7 only,
// Section 3.2) genuinely fails, which is why the D states exist.
//
//   ./verify_exhaustive [--n 8] [--k 4]

#include <cstdio>

#include "core/kpartition.hpp"
#include "pp/transition_table.hpp"
#include "util/stopwatch.hpp"
#include "util/cli.hpp"
#include "verify/global_fairness.hpp"

namespace {

void report(const char* label, const ppk::verify::Verdict& verdict,
            double seconds) {
  std::printf("%s\n", label);
  std::printf("  reachable configurations: %zu\n", verdict.reachable_configs);
  std::printf("  SCCs: %zu (bottom: %zu)\n", verdict.num_sccs,
              verdict.bottom_sccs);
  std::printf("  verdict: %s (%.3fs)\n",
              verdict.solves ? "SOLVES uniform k-partition under global "
                               "fairness"
                             : "DOES NOT SOLVE the problem",
              seconds);
  if (!verdict.solves) {
    std::printf("  witness: %s\n", verdict.failure.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("verify_exhaustive",
               "Model-check Theorem 1 on a small population.");
  auto n_flag = cli.flag<int>("n", 8, "population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);

  {
    const ppk::core::KPartitionProtocol protocol(k);
    const ppk::pp::TransitionTable table(protocol);
    ppk::Stopwatch timer;
    const auto verdict =
        ppk::verify::verify_uniform_partition(protocol, table, n);
    report(protocol.name().c_str(), verdict, timer.seconds());
  }

  if (k >= 3 && n >= 2u * k) {
    std::printf("\n");
    const ppk::core::BasicStrategyProtocol basic(k);
    const ppk::pp::TransitionTable table(basic);
    ppk::Stopwatch timer;
    const auto verdict = ppk::verify::verify_uniform_partition(basic, table, n);
    report(basic.name().c_str(), verdict, timer.seconds());
    std::printf(
        "\n(The basic strategy wedges when >= ceil(n/k) builders appear;\n"
        " the full protocol's D states roll such builds back -- compare the\n"
        " two verdicts above.)\n");
  }
  return 0;
}
