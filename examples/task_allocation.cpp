// Scenario from the paper's introduction: "we can assign different tasks
// to different groups and make agents execute multiple tasks at the same
// time" -- extended with the R-generalized partition of [24] so tasks can
// have different weights.
//
// A swarm of molecular robots must split its workforce across three tasks
// whose workloads stand in ratio 3 : 2 : 1.  The RatioPartitionProtocol
// (uniform 6-partition + slot merging) assigns each robot a task with no
// identities, no counting and no coordinator.
//
//   ./task_allocation [--robots 90] [--seed 11]

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/invariants.hpp"
#include "core/ratio_partition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("task_allocation",
               "Weighted task assignment via R-generalized partition.");
  auto robots_flag = cli.flag<int>("robots", 90, "swarm size");
  auto seed = cli.flag<long long>("seed", 11, "RNG seed");
  cli.parse(argc, argv);
  const auto robots = static_cast<std::uint32_t>(*robots_flag);

  const std::vector<std::uint32_t> ratio{3, 2, 1};
  const char* task_names[] = {"patrol", "transport", "repair"};

  const ppk::core::RatioPartitionProtocol protocol(ratio);
  const ppk::pp::TransitionTable table(protocol);
  std::printf("%s, %d states per agent\n", protocol.name().c_str(),
              int{protocol.num_states()});

  ppk::pp::Population population(robots, protocol.num_states(),
                                 protocol.initial_state());
  ppk::pp::AgentSimulator sim(table, std::move(population),
                              static_cast<std::uint64_t>(*seed));
  // Stability is inherited from the inner uniform-partition protocol.
  auto oracle = ppk::core::stable_pattern_oracle(protocol.inner(), robots);
  const auto result = sim.run(*oracle);
  std::printf("assignment settled after %llu interactions\n",
              static_cast<unsigned long long>(result.interactions));

  std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
  for (std::uint32_t a = 0; a < robots; ++a) {
    ++sizes[protocol.group(sim.population().state_of(a))];
  }
  const auto total_ratio = std::accumulate(ratio.begin(), ratio.end(), 0u);
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    std::printf("  %-9s (weight %u): %2u robots (ideal %.1f)\n",
                task_names[t], ratio[t], sizes[t],
                static_cast<double>(robots * ratio[t]) / total_ratio);
  }
  return 0;
}
