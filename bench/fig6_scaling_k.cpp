// Figure 6 of the paper: interactions vs k at fixed n = 960, restricted to
// k | 960 to suppress the residue effect.  The paper's log-scale plot shows
// exponential growth in k: an m-state builder must meet k-2 free agents
// before colliding with another builder, which gets exponentially unlikely
// as k grows.  The printed mean/prev column exposes the accelerating ratio.
//
// Runtime note: the per-trial cost itself grows exponentially with k.  The
// default sweep stops at k = 16 (~seconds per point on one core); --paper
// extends to k = 20 and 100 trials, which takes minutes.

#include <optional>
#include <vector>

#include "analysis/fitting.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("fig6_scaling_k",
               "Figure 6: interactions vs k at n = 960 (k | 960).");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/20);
  auto n_flag = cli.flag<int>("n", 960, "population size");
  auto k_max = cli.flag<int>("k-max", 16, "largest k in the sweep");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);

  ppk::bench::print_header("Figure 6", "interactions vs k at fixed n");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "mean_interactions", "stddev",
                                 "ci95", "trials", "wall_seconds"});
  }

  const auto options = common.experiment_options();
  const int limit = *common.paper ? std::max(*k_max, 20) : *k_max;
  ppk::analysis::Table table({"k", "mean interactions", "stddev", "ci95",
                              "mean/prev", "seconds"});
  double previous = 0.0;
  std::vector<double> ks;
  std::vector<double> means;
  for (std::uint32_t k = 3; k <= static_cast<std::uint32_t>(limit); ++k) {
    if (n % k != 0) continue;  // the paper plots only k | n
    const auto r = ppk::analysis::measure_kpartition(
        static_cast<ppk::pp::GroupId>(k), n, options);
    table.row(k, r.interactions.mean, r.interactions.stddev,
              r.interactions.ci95,
              previous > 0 ? r.interactions.mean / previous : 0.0,
              r.wall_seconds);
    previous = r.interactions.mean;
    ks.push_back(k);
    means.push_back(r.interactions.mean);
    if (csv) {
      csv->row(k, n, r.interactions.mean, r.interactions.stddev,
               r.interactions.ci95, r.trials, r.wall_seconds);
    }
  }
  table.print(std::cout);
  if (ks.size() >= 3) {
    const auto exponential = ppk::analysis::fit_exponential(ks, means);
    const auto power = ppk::analysis::fit_power_law(ks, means);
    std::printf("\nfit: interactions ~ %.2f^k (R^2 %.3f); power-law model"
                " R^2 %.3f\n",
                exponential.ratio, exponential.r_squared, power.r_squared);
  }
  std::printf(
      "\nExpected shape (paper Fig. 6): growth that is exponential in k --\n"
      "the fitted per-k ratio exceeds 1.4 and the exponential model fits at\n"
      "least as well as the power law (straight line on a log-scale plot of\n"
      "the CSV output).\n");
  common.write_metrics("fig6_scaling_k");
  return 0;
}
