// Validation bench: the paper's Section 5 quantity (expected interactions
// to stabilization) computed two independent ways --
//
//   analytic   exact expected hitting time of the Lemma 6 stable pattern,
//              from the Markov chain over the full reachable configuration
//              graph (verify/markov.hpp), and
//   empirical  the paper's methodology: the mean over repeated random
//              simulations.
//
// Agreement within the Monte-Carlo confidence interval validates the whole
// measurement pipeline.  Also prints the *exact* wedge probability of the
// basic-strategy ablation next to its sampled estimate.

#include <optional>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "verify/markov.hpp"

namespace {

ppk::pp::Counts all_initial(const ppk::pp::Protocol& protocol,
                            std::uint32_t n) {
  ppk::pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("exact_vs_monte_carlo",
               "Analytic expected stabilization time vs sampled mean.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/2000);
  cli.parse(argc, argv);
  const auto trials = static_cast<std::uint32_t>(*common.trials);

  ppk::bench::print_header("Exact vs Monte Carlo",
                           "Markov-chain expectation vs sampled mean");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "analytic", "empirical_mean",
                                 "ci95", "reachable_configs", "trials"});
  }

  ppk::analysis::Table table({"k", "n", "analytic E[interactions]",
                              "empirical mean", "ci95", "configs",
                              "|diff|/analytic"});
  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c : {Case{2, 6}, Case{2, 9}, Case{3, 6}, Case{3, 7},
                        Case{3, 9}, Case{4, 8}, Case{4, 9}, Case{5, 7}}) {
    const ppk::core::KPartitionProtocol protocol(c.k);
    const ppk::pp::TransitionTable tt(protocol);

    const ppk::verify::MarkovAnalysis markov(tt, all_initial(protocol, c.n));
    const auto analytic = markov.expected_hitting_time(
        [&](const ppk::pp::Counts& config) {
          return ppk::core::matches_stable_pattern(protocol, c.n, config);
        });

    ppk::pp::MonteCarloOptions options;
    options.trials = trials;
    options.master_seed = static_cast<std::uint64_t>(*common.seed);
    const auto empirical = ppk::pp::run_monte_carlo(
        protocol, tt, c.n,
        [&] { return ppk::core::stable_pattern_oracle(protocol, c.n); },
        options);

    const double mean = empirical.mean_interactions();
    const double ci = 1.96 * empirical.stddev_interactions() /
                      std::sqrt(static_cast<double>(trials));
    const double a = analytic.value_or(-1.0);
    table.row(int{c.k}, c.n, a, mean, ci, markov.graph().num_configs(),
              a > 0 ? std::abs(mean - a) / a : -1.0);
    if (csv) {
      csv->row(int{c.k}, c.n, a, mean, ci, markov.graph().num_configs(),
               trials);
    }
  }
  table.print(std::cout);

  std::printf("\n--- exact wedge probability of the basic strategy ---\n");
  ppk::analysis::Table wedge_table({"k", "n", "exact P(wedge)", "configs"});
  for (const Case& c : {Case{3, 6}, Case{3, 9}, Case{4, 8}, Case{4, 12}}) {
    const ppk::core::BasicStrategyProtocol protocol(c.k);
    const ppk::pp::TransitionTable tt(protocol);
    const ppk::verify::MarkovAnalysis markov(tt, all_initial(protocol, c.n));
    double wedge = 0.0;
    for (const auto& a : markov.absorption_probabilities()) {
      const auto& rep = markov.graph().config(a.representative_config);
      std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
      for (ppk::pp::StateId s = 0; s < rep.size(); ++s) {
        sizes[protocol.group(s)] += rep[s];
      }
      if (!ppk::pp::is_uniform_partition(sizes)) wedge += a.probability;
    }
    wedge_table.row(int{c.k}, c.n, wedge, markov.graph().num_configs());
  }
  wedge_table.print(std::cout);
  std::printf(
      "\nReading: the sampled means land within their confidence interval\n"
      "of the exact expectations -- the simulation pipeline measures what\n"
      "the theory defines.  The exact wedge probabilities quantify how\n"
      "often the D-state-free ablation fails (cf. ablation_dstates).\n");
  return 0;
}
