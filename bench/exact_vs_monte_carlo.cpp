// Validation bench: the paper's Section 5 quantity (expected interactions
// to stabilization) computed two independent ways --
//
//   analytic   exact expected hitting time of the Lemma 6 stable pattern,
//              from the Markov chain over the reachable configuration
//              space (verify/markov.hpp), and
//   empirical  the paper's methodology: the mean over repeated random
//              simulations.
//
// Agreement within the Monte-Carlo confidence interval validates the whole
// measurement pipeline.  Also prints the *exact* wedge probability of the
// basic-strategy ablation next to its sampled estimate.
//
// The lumped blocks benchmark the symmetry-lumped sparse back end
// (verify/lumped_markov.hpp) against the dense one:
//
//   agreement  at every size the dense path reaches, both back ends must
//              produce the same expectation to <= 1e-9 relative error
//              (gated by scripts/check_bench_regression.py), and
//   ceiling    per family, one chain at least 10x past the dense solver's
//              3000-unknown cap that the lumped path still answers.
//
// Every gated figure is exact (a count or a solver answer), so the report
// needs no timing calibration; --json writes the machine-readable report
// (schema ppk-bench-exact-v1, committed baseline BENCH_EXACT.json).

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "verify/markov.hpp"

namespace {

using ppk::verify::ConfigPredicate;

ppk::pp::Counts all_initial(const ppk::pp::Protocol& protocol,
                            std::uint32_t n) {
  ppk::pp::Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state()] = n;
  return counts;
}

/// Silence with respect to `table`: no present ordered pair is effective
/// (the weak family's stopping rule).
ConfigPredicate silence_predicate(const ppk::pp::TransitionTable& table) {
  return [&table](const ppk::pp::Counts& counts) {
    for (std::size_t p = 0; p < counts.size(); ++p) {
      if (counts[p] == 0) continue;
      for (std::size_t q = 0; q < counts.size(); ++q) {
        if (counts[q] == 0) continue;
        if (p == q && counts[p] < 2) continue;
        if (table.effective(static_cast<ppk::pp::StateId>(p),
                            static_cast<ppk::pp::StateId>(q))) {
          return false;
        }
      }
    }
    return true;
  };
}

/// One family instance the lumped blocks sweep: protocol + target factory.
struct Family {
  std::string name;
  int k;  // 0 = not parameterized
  std::function<std::unique_ptr<ppk::pp::Protocol>()> make;
  std::function<ConfigPredicate(const ppk::pp::Protocol&,
                                const ppk::pp::TransitionTable&,
                                std::uint32_t n)>
      target;
};

std::vector<Family> lumped_families() {
  std::vector<Family> families;
  families.push_back(
      {"kpartition", 2,
       [] { return std::make_unique<ppk::core::KPartitionProtocol>(2); },
       [](const ppk::pp::Protocol& p, const ppk::pp::TransitionTable&,
          std::uint32_t n) -> ConfigPredicate {
         return [&p, n](const ppk::pp::Counts& c) {
           return ppk::core::matches_stable_pattern(
               static_cast<const ppk::core::KPartitionProtocol&>(p), n, c);
         };
       }});
  families.push_back(
      {"weak-kpartition", 2,
       [] { return std::make_unique<ppk::core::WeakKPartitionProtocol>(2); },
       [](const ppk::pp::Protocol&, const ppk::pp::TransitionTable& table,
          std::uint32_t) { return silence_predicate(table); }});
  families.push_back(
      {"bipartition", 0,
       [] { return std::make_unique<ppk::core::BipartitionProtocol>(); },
       [](const ppk::pp::Protocol&, const ppk::pp::TransitionTable&,
          std::uint32_t n) -> ConfigPredicate {
         return [n](const ppk::pp::Counts& c) {
           using P = ppk::core::BipartitionProtocol;
           return c[P::kInitial] + c[P::kInitialPrime] == n % 2 &&
                  c[P::kG1] + c[P::kG2] == n - n % 2;
         };
       }});
  return families;
}

struct AgreementRow {
  std::string family;
  int k;
  std::uint32_t n;
  double dense;
  double lumped;
  double rel_error;
  std::uint64_t configs;      // reachable configurations (dense unknowns)
  std::uint64_t orbits;       // lumped unknowns
  std::uint64_t group_order;  // declared symmetry group's order
};

struct CeilingRow {
  std::string family;
  int k;
  std::uint32_t n;
  std::uint64_t reachable_configs;
  std::uint64_t orbits;
  std::uint64_t group_order;
  double expected_interactions;
  double seconds;
  bool solved;
};

/// The dense back end's hard system-size cap (verify/markov.cpp throws
/// past it); the ceiling gate requires the lumped rows to sit >= 10x it.
constexpr std::uint64_t kDenseCap = 3000;

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("exact_vs_monte_carlo",
               "Analytic expected stabilization time vs sampled mean, and "
               "the lumped back end vs the dense one.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/2000);
  auto smoke = cli.flag<bool>(
      "smoke", false,
      "CI-sized run: fewer Monte-Carlo trials (the lumped agreement and "
      "ceiling blocks are exact counts and keep their full size)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);
  ppk::bench::install_sigint_handler();
  const auto trials =
      *smoke ? std::uint32_t{200} : static_cast<std::uint32_t>(*common.trials);

  ppk::bench::print_header("Exact vs Monte Carlo",
                           "Markov-chain expectation vs sampled mean");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "analytic", "empirical_mean",
                                 "ci95", "reachable_configs", "trials"});
  }

  struct McRow {
    int k;
    std::uint32_t n;
    double analytic;
    double mean;
    double ci;
    std::uint64_t configs;
  };
  std::vector<McRow> mc_rows;

  ppk::analysis::Table table({"k", "n", "analytic E[interactions]",
                              "empirical mean", "ci95", "configs",
                              "|diff|/analytic"});
  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c : {Case{2, 6}, Case{2, 9}, Case{3, 6}, Case{3, 7},
                        Case{3, 9}, Case{4, 8}, Case{4, 9}, Case{5, 7}}) {
    if (ppk::bench::interrupted()) break;
    const ppk::core::KPartitionProtocol protocol(c.k);
    const ppk::pp::TransitionTable tt(protocol);

    const ppk::verify::MarkovAnalysis markov(tt, all_initial(protocol, c.n));
    const auto analytic = markov.expected_hitting_time(
        [&](const ppk::pp::Counts& config) {
          return ppk::core::matches_stable_pattern(protocol, c.n, config);
        });

    ppk::pp::MonteCarloOptions options;
    options.trials = trials;
    options.master_seed = static_cast<std::uint64_t>(*common.seed);
    const auto empirical = ppk::pp::run_monte_carlo(
        protocol, tt, c.n,
        [&] { return ppk::core::stable_pattern_oracle(protocol, c.n); },
        options);

    const double mean = empirical.mean_interactions();
    const double ci = 1.96 * empirical.stddev_interactions() /
                      std::sqrt(static_cast<double>(trials));
    const double a = analytic.value_or(-1.0);
    table.row(int{c.k}, c.n, a, mean, ci, markov.graph().num_configs(),
              a > 0 ? std::abs(mean - a) / a : -1.0);
    mc_rows.push_back(
        {int{c.k}, c.n, a, mean, ci, markov.graph().num_configs()});
    if (csv) {
      csv->row(int{c.k}, c.n, a, mean, ci, markov.graph().num_configs(),
               trials);
    }
  }
  table.print(std::cout);

  // --- Lumped vs dense agreement ------------------------------------------
  // Both back ends over the same chain at dense-reachable sizes; the
  // regression gate pins every row to <= 1e-9 relative error.
  std::printf("\n--- symmetry-lumped back end vs dense elimination ---\n");
  std::vector<AgreementRow> agreement;
  ppk::analysis::Table agree_table(
      {"family", "k", "n", "dense", "lumped", "rel error", "configs",
       "orbits", "|G|"});
  const std::vector<Family> families = lumped_families();
  const std::vector<std::vector<std::uint32_t>> agreement_ns = {
      {6, 9, 12, 16}, {4, 6, 8}, {6, 9, 12, 16}};
  for (std::size_t f = 0; f < families.size(); ++f) {
    const Family& family = families[f];
    const auto protocol = family.make();
    const ppk::pp::TransitionTable tt(*protocol);
    for (const std::uint32_t n : agreement_ns[f]) {
      if (ppk::bench::interrupted()) break;
      const ppk::pp::Counts initial = all_initial(*protocol, n);
      const ConfigPredicate target = family.target(*protocol, tt, n);

      ppk::verify::MarkovOptions dense_options;
      dense_options.method = ppk::verify::MarkovMethod::kDense;
      const ppk::verify::MarkovAnalysis dense(tt, initial, dense_options);
      const auto dense_expected = dense.expected_hitting_time(target);

      ppk::verify::MarkovOptions lumped_options;
      lumped_options.symmetry = protocol->symmetry();
      const ppk::verify::MarkovAnalysis lumped(tt, initial,
                                               std::move(lumped_options));
      const auto lumped_expected = lumped.expected_hitting_time(target);

      const double d = dense_expected.value_or(-1.0);
      const double l = lumped_expected.value_or(-1.0);
      const double rel = d > 0 ? std::abs(l - d) / d : -1.0;
      agreement.push_back({family.name, family.k, n, d, l, rel,
                           static_cast<std::uint64_t>(
                               dense.graph().num_configs()),
                           lumped.lumped().num_orbits(),
                           lumped.lumped().group_order()});
      agree_table.row(family.name, family.k, n, d, l, rel,
                      dense.graph().num_configs(),
                      lumped.lumped().num_orbits(),
                      lumped.lumped().group_order());
    }
  }
  agree_table.print(std::cout);

  // --- Lumped ceiling -------------------------------------------------------
  // Per family: walk n upward until the reachable space is >= 10x the
  // dense cap, then solve that chain with the lumped back end.  Every
  // figure here is a count or an exact answer -- no calibration needed.
  std::printf("\n--- lumped ceiling (10x past the dense %llu-unknown cap) "
              "---\n",
              static_cast<unsigned long long>(kDenseCap));
  std::vector<CeilingRow> ceiling;
  ppk::analysis::Table ceiling_table({"family", "k", "n", "configs",
                                      "orbits", "|G|", "E[interactions]",
                                      "seconds"});
  for (const Family& family : families) {
    if (ppk::bench::interrupted()) break;
    const auto protocol = family.make();
    const ppk::pp::TransitionTable tt(*protocol);
    // Find the first n whose reachable space crosses 10x the cap.
    // Exploration is cheap next to the solve, so a linear probe with a
    // family-scaled stride is fine.
    std::uint32_t n = 0;
    std::uint64_t configs = 0;
    for (std::uint32_t probe = 8; probe <= 2048;
         probe += (probe < 64 ? 1 : 8)) {
      const ppk::verify::ConfigGraph graph(tt, all_initial(*protocol, probe));
      if (!graph.complete()) break;
      if (graph.num_configs() >= 10 * kDenseCap) {
        n = probe;
        configs = graph.num_configs();
        break;
      }
    }
    CeilingRow row{family.name, family.k, n, configs, 0, 0, -1.0, 0.0,
                   false};
    if (n != 0) {
      const auto start = std::chrono::steady_clock::now();
      ppk::verify::MarkovOptions options;
      options.symmetry = protocol->symmetry();
      const ppk::verify::MarkovAnalysis lumped(tt, all_initial(*protocol, n),
                                               std::move(options));
      const auto expected =
          lumped.expected_hitting_time(family.target(*protocol, tt, n));
      row.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      row.orbits = lumped.lumped().num_orbits();
      row.group_order = lumped.lumped().group_order();
      if (expected.has_value()) {
        row.expected_interactions = *expected;
        row.solved = true;
      }
    }
    ceiling.push_back(row);
    ceiling_table.row(row.family, row.k, row.n, row.reachable_configs,
                      row.orbits, row.group_order,
                      row.expected_interactions, row.seconds);
  }
  ceiling_table.print(std::cout);

  std::printf("\n--- exact wedge probability of the basic strategy ---\n");
  ppk::analysis::Table wedge_table({"k", "n", "exact P(wedge)", "configs"});
  for (const Case& c : {Case{3, 6}, Case{3, 9}, Case{4, 8}, Case{4, 12}}) {
    if (ppk::bench::interrupted()) break;
    const ppk::core::BasicStrategyProtocol protocol(c.k);
    const ppk::pp::TransitionTable tt(protocol);
    const ppk::verify::MarkovAnalysis markov(tt, all_initial(protocol, c.n));
    double wedge = 0.0;
    for (const auto& a : markov.absorption_probabilities()) {
      const auto& rep = a.representative;
      std::vector<std::uint32_t> sizes(protocol.num_groups(), 0);
      for (ppk::pp::StateId s = 0; s < rep.size(); ++s) {
        sizes[protocol.group(s)] += rep[s];
      }
      if (!ppk::pp::is_uniform_partition(sizes)) wedge += a.probability;
    }
    wedge_table.row(int{c.k}, c.n, wedge, markov.graph().num_configs());
  }
  wedge_table.print(std::cout);

  if (!common.json->empty()) {
    // Atomic (temp + rename): an interrupted run cannot leave a truncated
    // report where the regression gate expects a baseline.
    ppk::io::AtomicFileWriter file(*common.json);
    ppk::io::JsonWriter json(file.stream());
    json.begin_object();
    json.member("schema", "ppk-bench-exact-v1");
    json.member("bench", "exact_vs_monte_carlo");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    json.member("interrupted", ppk::bench::interrupted());
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.member("trials", static_cast<std::uint64_t>(trials));
    json.member("dense_cap", kDenseCap);
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    json.key("monte_carlo");
    json.begin_array();
    for (const McRow& row : mc_rows) {
      json.begin_object();
      json.member("k", static_cast<std::int64_t>(row.k));
      json.member("n", static_cast<std::uint64_t>(row.n));
      json.member("analytic", row.analytic);
      json.member("empirical_mean", row.mean);
      json.member("ci95", row.ci);
      json.member("configs", row.configs);
      json.end_object();
    }
    json.end_array();
    json.key("agreement");
    json.begin_array();
    for (const AgreementRow& row : agreement) {
      json.begin_object();
      json.member("family", row.family);
      json.member("k", static_cast<std::int64_t>(row.k));
      json.member("n", static_cast<std::uint64_t>(row.n));
      json.member("dense", row.dense);
      json.member("lumped", row.lumped);
      json.member("rel_error", row.rel_error);
      json.member("configs", row.configs);
      json.member("orbits", row.orbits);
      json.member("group_order", row.group_order);
      json.end_object();
    }
    json.end_array();
    json.key("ceiling");
    json.begin_array();
    for (const CeilingRow& row : ceiling) {
      json.begin_object();
      json.member("family", row.family);
      json.member("k", static_cast<std::int64_t>(row.k));
      json.member("n", static_cast<std::uint64_t>(row.n));
      json.member("reachable_configs", row.reachable_configs);
      json.member("orbits", row.orbits);
      json.member("group_order", row.group_order);
      json.member("expected_interactions", row.expected_interactions);
      json.member("seconds", row.seconds);
      json.member("solved", row.solved);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nreport written to %s\n", common.json->c_str());
  }

  std::printf(
      "\nReading: the sampled means land within their confidence interval\n"
      "of the exact expectations -- the simulation pipeline measures what\n"
      "the theory defines.  The lumped back end reproduces every dense\n"
      "answer to <= 1e-9 relative error and solves chains an order of\n"
      "magnitude past the dense cap.  The exact wedge probabilities\n"
      "quantify how often the D-state-free ablation fails (cf.\n"
      "ablation_dstates).\n");
  return 0;
}
