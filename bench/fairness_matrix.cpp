// The three-papers trade-off sweep: state count vs stabilization time vs
// fairness assumption vs topology class, for the repo's three protocol
// families (docs/protocols.md holds the prose version of this table):
//
//   kpartition        3k-2 states  global fairness  complete graph
//                     (the source paper, YasumiKOII18)
//   weak-kpartition   3k+1 states  weak fairness    complete graph
//                     (the follow-up, arXiv:1911.04678, in spirit)
//   graph-bipartition 5 states     global fairness  ANY connected graph
//                     (arXiv:2011.08366, in spirit; k = 2 only)
//
// Emits the machine-readable report (BENCH_FAIRNESS.json, schema
// ppk-bench-fairness-v1) that the CI fairness-matrix job gates with
// scripts/check_bench_regression.py.  Four blocks:
//
//  1. Trade-off grid.  Each family on its common ground -- the complete
//     graph under the uniform-random scheduler -- at matched (k, n):
//     state count against mean interactions to the family's exact
//     stopping rule.  At k = 2 all three families solve the same problem
//     with 4, 7 and 5 states; the grid is the cost of each extra
//     guarantee, measured.
//
//  2. Fairness matrix.  Family x scheduling policy (uniform-random,
//     epsilon-fair, weak-round-robin) on the complete graph.  The point
//     this block demonstrates (and docs/fairness.md narrates): the greedy
//     weak-round-robin adversary does NOT refute the global-fairness
//     protocols -- they stabilize anyway, because a 16-probe scheduler
//     cannot navigate into the measure-zero livelock the exhaustive
//     verifier proves reachable.  Simulation separates fairness classes
//     by cost, never by correctness; block 4 carries the ground truth.
//
//  3. Topology rows.  kpartition and graph-bipartition on the complete
//     graph, the ring and the star under the live-edge engine: the
//     5-state family stabilizes everywhere, the paper's protocol wedges
//     on sparse graphs (exactly detected, reported as stalled).
//
//  4. Verifier verdicts.  The exhaustive weak-fairness decision procedure
//     (verify/weak_fairness.hpp) at small n, embedded in the report so
//     the correctness column of the trade-off table is machine-checked in
//     the same artifact as the cost columns: weak-kpartition solves under
//     weak fairness, the two global-fairness families provably do not.
//
// Every figure in blocks 1-3 is an interaction COUNT -- the model's own
// time unit -- not a wall-clock time, so the report needs no calibration
// and the complete-graph rows are bit-reproducible across machines: each
// row carries probe_interactions (trial 0's drawn-pair count, a pure
// function of the seed), which the regression gate pins to exact equality
// against the committed baseline.  Live-edge topology rows are pinned the
// same way on the same machine only (the skip-ahead sampler's libm calls
// are platform-specific).

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/graph_bipartition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/weak_kpartition.hpp"
#include "pp/fairness.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/stability.hpp"
#include "pp/transition_table.hpp"
#include "verify/weak_fairness.hpp"

namespace {

using ppk::pp::FairnessSpec;
using ppk::pp::InteractionGraph;

/// One measured sweep point, shared by the trade-off, matrix and topology
/// blocks (unused axes stay at their defaults and are not serialized).
struct Row {
  std::string family;
  int k = 0;
  std::uint32_t n = 0;
  int states = 0;
  std::string policy = "uniform-random";
  double epsilon = 1.0;
  std::string topology = "complete";
  std::string engine;
  int trials = 0;
  std::uint64_t budget = 0;
  double stabilized_rate = 0.0;
  double stalled_rate = 0.0;
  double mean_interactions_stabilized = 0.0;
  /// Trial 0's drawn-pair count: a pure function of (seed, configuration),
  /// independent of the trial count, so smoke and full reports pin the
  /// same value.  The regression gate demands exact equality.
  std::uint64_t probe_interactions = 0;
  bool probe_stabilized = false;
};

/// A protocol family bundled with its exact stopping rule.
struct FamilyUnderTest {
  const char* name;
  int k;
  const ppk::pp::Protocol& protocol;
  const ppk::pp::TransitionTable& table;
  ppk::pp::OracleFactory make_oracle;
};

Row run_point(const FamilyUnderTest& family, std::uint32_t n,
              const ppk::pp::MonteCarloOptions& options, const char* engine) {
  const auto result = ppk::pp::run_monte_carlo(family.protocol, family.table,
                                               n, family.make_oracle, options);
  Row row;
  row.family = family.name;
  row.k = family.k;
  row.n = n;
  row.states = family.protocol.num_states();
  row.policy = to_string(options.fairness.policy);
  row.epsilon = options.fairness.epsilon;
  row.engine = engine;
  row.trials = static_cast<int>(options.trials);
  row.budget = options.max_interactions;
  int stabilized = 0;
  int stalled = 0;
  double total = 0.0;
  for (const auto& trial : result.trials) {
    if (trial.stabilized) {
      ++stabilized;
      total += static_cast<double>(trial.interactions);
    }
    if (trial.stalled) ++stalled;
  }
  const auto trials = static_cast<double>(options.trials);
  row.stabilized_rate = stabilized / trials;
  row.stalled_rate = stalled / trials;
  row.mean_interactions_stabilized = stabilized > 0 ? total / stabilized : 0.0;
  row.probe_interactions = result.trials.front().interactions;
  row.probe_stabilized = result.trials.front().stabilized;
  return row;
}

void write_row(ppk::io::JsonWriter& json, const Row& row) {
  json.begin_object();
  json.member("family", row.family);
  json.member("k", row.k);
  json.member("n", static_cast<std::uint64_t>(row.n));
  json.member("states", row.states);
  json.member("policy", row.policy);
  json.member("epsilon", row.epsilon);
  json.member("topology", row.topology);
  json.member("engine", row.engine);
  json.member("trials", static_cast<std::int64_t>(row.trials));
  json.member("budget", row.budget);
  json.member("stabilized_rate", row.stabilized_rate);
  json.member("stalled_rate", row.stalled_rate);
  json.member("mean_interactions_stabilized",
              row.mean_interactions_stabilized);
  json.member("probe_interactions", row.probe_interactions);
  json.member("probe_stabilized", row.probe_stabilized);
  json.end_object();
}

/// One exhaustive weak-fairness verdict row (block 4).
struct VerifierRow {
  std::string family;
  int k = 0;
  std::uint32_t n = 0;
  bool solves = false;
  bool exploration_complete = false;
  std::uint64_t reachable_configs = 0;
  std::uint64_t bottom_sccs = 0;
};

VerifierRow verdict_row(const FamilyUnderTest& family, std::uint32_t n) {
  const auto verdict = ppk::verify::verify_weak_uniform_partition(
      family.protocol, family.table, n);
  VerifierRow row;
  row.family = family.name;
  row.k = family.k;
  row.n = n;
  row.solves = verdict.solves;
  row.exploration_complete = verdict.exploration_complete;
  row.reachable_configs = verdict.reachable_configs;
  row.bottom_sccs = verdict.bottom_sccs;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("fairness_matrix",
               "State count vs stabilization time vs fairness assumption "
               "across the three protocol families.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/40);
  auto smoke = cli.flag<bool>(
      "smoke", false,
      "CI-sized run: fewer trials per point (the grid, budgets and seeds "
      "are identical to a full run, so the probe pins still compare)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);
  ppk::bench::install_sigint_handler();

  const auto seed = static_cast<std::uint64_t>(*common.seed);
  const auto threads = static_cast<std::size_t>(std::max(0, *common.threads));
  const int tradeoff_trials = *smoke ? 10 : *common.trials;
  const int matrix_trials = *smoke ? 8 : *common.trials;

  // The protocol families.  The paper's and the weak family's k axes are
  // instantiated up front so the rows can reference them uniformly.
  const ppk::core::KPartitionProtocol paper2(2), paper3(3), paper4(4);
  const ppk::core::WeakKPartitionProtocol weak2(2), weak3(3), weak4(4);
  const ppk::core::GraphBipartitionProtocol bip;
  const ppk::pp::TransitionTable paper2_t(paper2), paper3_t(paper3),
      paper4_t(paper4);
  const ppk::pp::TransitionTable weak2_t(weak2), weak3_t(weak3),
      weak4_t(weak4);
  const ppk::pp::TransitionTable bip_t(bip);

  const auto paper_family = [&](const ppk::core::KPartitionProtocol& p,
                                const ppk::pp::TransitionTable& t,
                                std::uint32_t n) {
    return FamilyUnderTest{
        "kpartition", int{p.k()}, p, t,
        [&p, n] { return ppk::core::stable_pattern_oracle(p, n); }};
  };
  // The weak family's exact stopping rule is silence: every effective
  // interaction consumes a finite resource, so every execution goes
  // silent, and every silent configuration is uniform (machine-checked).
  const auto weak_family = [&](const ppk::core::WeakKPartitionProtocol& p,
                               const ppk::pp::TransitionTable& t) {
    return FamilyUnderTest{
        "weak-kpartition", int{p.k()}, p, t,
        [&t] { return std::make_unique<ppk::pp::SilenceOracle>(t); }};
  };
  const auto bip_family = [&](std::uint32_t n) {
    return FamilyUnderTest{
        "graph-bipartition", 2, bip, bip_t,
        [&, n] { return ppk::core::graph_bipartition_stable_oracle(bip, n); }};
  };

  ppk::bench::print_header(
      "Fairness matrix",
      "the three families' state/time/fairness trade-off, measured");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv,
                std::vector<std::string>{
                    "block", "family", "k", "n", "states", "policy",
                    "topology", "stabilized_rate", "stalled_rate",
                    "mean_interactions", "trials"});
  }
  const auto csv_row = [&](const char* block, const Row& row) {
    if (csv) {
      csv->row(block, row.family, row.k, row.n, row.states, row.policy,
               row.topology, row.stabilized_rate, row.stalled_rate,
               row.mean_interactions_stabilized, row.trials);
    }
  };

  // --- Block 1: trade-off grid (complete graph, uniform-random) ---------
  const std::uint32_t tradeoff_n = 48;  // divisible by every k in the grid
  std::vector<Row> tradeoff;
  {
    ppk::pp::MonteCarloOptions options;
    options.trials = static_cast<std::uint32_t>(tradeoff_trials);
    options.master_seed = seed;
    options.max_interactions = 10'000'000;
    options.engine = ppk::pp::Engine::kAgentArray;
    options.threads = threads;

    std::vector<FamilyUnderTest> families = {
        paper_family(paper2, paper2_t, tradeoff_n),
        paper_family(paper3, paper3_t, tradeoff_n),
        paper_family(paper4, paper4_t, tradeoff_n),
        weak_family(weak2, weak2_t),
        weak_family(weak3, weak3_t),
        weak_family(weak4, weak4_t),
        bip_family(tradeoff_n),
    };
    std::printf("--- trade-off grid: n = %u, uniform-random scheduler ---\n",
                tradeoff_n);
    ppk::analysis::Table out({"family", "k", "states", "stabilized rate",
                              "mean interactions"});
    for (const auto& family : families) {
      if (ppk::bench::interrupted()) break;
      Row row = run_point(family, tradeoff_n, options, "agent");
      out.row(row.family, row.k, row.states, row.stabilized_rate,
              row.mean_interactions_stabilized);
      csv_row("tradeoff", row);
      tradeoff.push_back(std::move(row));
    }
    out.print(std::cout);
    std::printf(
        "\nReading: at k = 2 the same problem costs 4 states (global\n"
        "fairness, complete graph), 5 states (global fairness, ANY graph)\n"
        "or 7 states (weak fairness) -- each relaxed assumption is paid in\n"
        "states and, for the weak family's demolition laps, interactions.\n\n");
  }

  // --- Block 2: fairness matrix (complete graph, n = 24) -----------------
  const std::uint32_t matrix_n = 24;
  std::vector<Row> matrix;
  if (!ppk::bench::interrupted()) {
    const std::vector<FairnessSpec> policies = {
        FairnessSpec::uniform_random(),
        FairnessSpec::epsilon_fair(0.1),
        FairnessSpec::weak_round_robin(),
    };
    std::vector<FamilyUnderTest> families = {
        paper_family(paper3, paper3_t, matrix_n),
        weak_family(weak3, weak3_t),
        bip_family(matrix_n),
    };
    std::printf("--- fairness matrix: n = %u ---\n", matrix_n);
    ppk::analysis::Table out({"family", "policy", "stabilized rate",
                              "mean interactions"});
    for (const auto& family : families) {
      for (const FairnessSpec& spec : policies) {
        if (ppk::bench::interrupted()) break;
        ppk::pp::MonteCarloOptions options;
        options.trials = static_cast<std::uint32_t>(matrix_trials);
        options.master_seed = seed;
        options.max_interactions = 5'000'000;
        options.engine = ppk::pp::Engine::kAuto;
        options.threads = threads;
        options.fairness = spec;
        Row row = run_point(family, matrix_n, options,
                            spec.needs_adversarial_engine() ? "adversarial"
                                                            : "agent");
        out.row(row.family, row.policy, row.stabilized_rate,
                row.mean_interactions_stabilized);
        csv_row("matrix", row);
        matrix.push_back(std::move(row));
      }
    }
    out.print(std::cout);
    std::printf(
        "\nReading: every cell stabilizes -- including the global-fairness\n"
        "families under the weak-round-robin adversary, whose 16-probe\n"
        "greedy schedule cannot find the measure-zero livelock the\n"
        "exhaustive verifier proves reachable (verdict block below).\n"
        "Simulation separates fairness classes by COST (the epsilon-fair\n"
        "and round-robin columns) but can never refute correctness; only\n"
        "the verifier decides it.  See docs/fairness.md.\n\n");
  }

  // --- Block 3: topology rows (live-edge engine, n = 25) -----------------
  const std::uint32_t topo_n = 25;  // odd: one bipartition signal survives
  std::vector<Row> topology;
  if (!ppk::bench::interrupted()) {
    struct Topology {
      const char* name;
      std::function<InteractionGraph(std::uint64_t)> make;
    };
    const std::vector<Topology> topologies = {
        {"complete",
         [&](std::uint64_t) { return InteractionGraph::complete(topo_n); }},
        {"ring", [&](std::uint64_t) { return InteractionGraph::ring(topo_n); }},
        {"star", [&](std::uint64_t) { return InteractionGraph::star(topo_n); }},
    };
    std::vector<FamilyUnderTest> families = {
        paper_family(paper3, paper3_t, topo_n),
        bip_family(topo_n),
    };
    std::printf("--- topology rows: n = %u, live-edge engine ---\n", topo_n);
    ppk::analysis::Table out({"family", "topology", "stabilized rate",
                              "stalled rate", "mean interactions"});
    for (const auto& family : families) {
      for (const Topology& topo : topologies) {
        if (ppk::bench::interrupted()) break;
        // 1e6 is ~2500x the slowest stabilized sparse row: a budget-capped
        // trial here is a genuine livelock (e.g. the paper's protocol on
        // the star, where the hub flips leaves forever without ever going
        // edge-dead), not a slow run.
        ppk::pp::MonteCarloOptions options;
        options.trials = static_cast<std::uint32_t>(matrix_trials);
        options.master_seed = seed;
        options.max_interactions = 1'000'000;
        options.engine = ppk::pp::Engine::kGraphJump;
        options.threads = threads;
        options.graph = topo.make;
        Row row = run_point(family, topo_n, options, "live-edge");
        row.topology = topo.name;
        out.row(row.family, row.topology, row.stabilized_rate,
                row.stalled_rate, row.mean_interactions_stabilized);
        csv_row("topology", row);
        topology.push_back(std::move(row));
      }
    }
    out.print(std::cout);
    std::printf(
        "\nReading: the 5-state signal-relay family stabilizes on every\n"
        "topology; the paper's protocol wedges on sparse graphs (builders\n"
        "walled in by committed neighbours -- the live-edge engine proves\n"
        "the wedge exactly and reports it as stalled).\n\n");
  }

  // --- Block 4: exhaustive weak-fairness verdicts ------------------------
  std::vector<VerifierRow> verdicts;
  if (!ppk::bench::interrupted()) {
    const std::uint32_t verify_n = 4;
    std::printf("--- exhaustive weak-fairness verdicts: n = %u ---\n",
                verify_n);
    ppk::analysis::Table out({"family", "k", "solves under weak fairness",
                              "reachable configs", "trapping SCCs"});
    for (const auto& family :
         {paper_family(paper3, paper3_t, verify_n), weak_family(weak3, weak3_t),
          bip_family(verify_n)}) {
      VerifierRow row = verdict_row(family, verify_n);
      out.row(row.family, row.k, row.solves ? "yes" : "NO",
              row.reachable_configs, row.bottom_sccs);
      verdicts.push_back(std::move(row));
    }
    out.print(std::cout);
    std::printf(
        "\nReading: the ground truth the matrix block cannot see -- only\n"
        "the weak family survives weak fairness; the other two have a\n"
        "weakly closable SCC a weakly fair adversary can trap forever.\n");
  }

  if (!common.json->empty()) {
    // Atomic (temp + rename): an interrupted run cannot leave a truncated
    // report where the regression gate expects a baseline.
    ppk::io::AtomicFileWriter file(*common.json);
    ppk::io::JsonWriter json(file.stream());
    json.begin_object();
    json.member("schema", "ppk-bench-fairness-v1");
    json.member("bench", "fairness_matrix");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    json.member("interrupted", ppk::bench::interrupted());
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    json.key("tradeoff");
    json.begin_array();
    for (const Row& row : tradeoff) write_row(json, row);
    json.end_array();
    json.key("matrix");
    json.begin_array();
    for (const Row& row : matrix) write_row(json, row);
    json.end_array();
    json.key("topology");
    json.begin_array();
    for (const Row& row : topology) write_row(json, row);
    json.end_array();
    json.key("verifier");
    json.begin_array();
    for (const VerifierRow& row : verdicts) {
      json.begin_object();
      json.member("family", row.family);
      json.member("k", row.k);
      json.member("n", static_cast<std::uint64_t>(row.n));
      json.member("fairness", "weak");
      json.member("solves", row.solves);
      json.member("exploration_complete", row.exploration_complete);
      json.member("reachable_configs", row.reachable_configs);
      json.member("bottom_sccs", row.bottom_sccs);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", common.json->c_str());
  }
  if (ppk::bench::interrupted()) {
    std::printf("\ninterrupted: partial sweep; the report (if written) is "
                "flagged and must not become a baseline\n");
    return 130;
  }
  return 0;
}
