// Figure 3 of the paper: mean interactions to stabilization vs the
// population size n, for k in {4, 6, 8}, sweeping every n (all residues of
// n mod k) to expose the sawtooth the paper highlights: the count jumps
// when n crosses c*k + 2 and peaks around n = c*k + k and c*k + k + 1,
// where the last grouping dominates.
//
// Default sweep: n from 2k to 15k step 1 per k.  --paper additionally uses
// 100 trials per point.

#include <optional>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("fig3_interactions_vs_n",
               "Figure 3: interactions vs n for k in {4, 6, 8}.");
  ppk::bench::CommonFlags common(cli);
  auto n_max_mult =
      cli.flag<int>("n-max-mult", 15, "sweep n up to this multiple of k");
  cli.parse(argc, argv);

  ppk::bench::print_header("Figure 3",
                           "interactions vs n, every residue of n mod k");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "n_mod_k", "mean_interactions",
                                 "stddev", "ci95", "trials"});
  }

  const auto options = common.experiment_options();
  for (ppk::pp::GroupId k : {ppk::pp::GroupId{4}, ppk::pp::GroupId{6}, ppk::pp::GroupId{8}}) {
    ppk::analysis::Table table({"n", "n mod k", "mean interactions", "stddev",
                                "ci95"});
    for (std::uint32_t n = 2u * k;
         n <= static_cast<std::uint32_t>(*n_max_mult) * k; ++n) {
      const auto r = ppk::analysis::measure_kpartition(k, n, options);
      table.row(n, n % k, r.interactions.mean, r.interactions.stddev,
                r.interactions.ci95);
      if (csv) {
        csv->row(int{k}, n, n % k, r.interactions.mean, r.interactions.stddev,
                 r.interactions.ci95, r.trials);
      }
    }
    std::printf("--- k = %d ---\n", int{k});
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 3): overall growth with n, overlaid with a\n"
      "sawtooth of period k -- local peaks near n = c*k + k and c*k + k + 1,\n"
      "where the final grouping accounts for over half the interactions.\n");
  common.write_metrics("fig3_interactions_vs_n");
  return 0;
}
