// google-benchmark microbenchmarks of the substrate itself: raw interaction
// throughput of both engines across (n, k), transition-table construction,
// and the incremental stability oracle's overhead.  These numbers justify
// the engineering choices in DESIGN.md and guard against performance
// regressions (a 10x slowdown here turns the Figure 6 sweep from seconds
// into minutes).

#include <benchmark/benchmark.h>

#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/transition_table.hpp"

namespace {

using ppk::core::KPartitionProtocol;

void BM_AgentEngineSteps(benchmark::State& state) {
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Population population(n, protocol.num_states(),
                                 protocol.initial_state());
  ppk::pp::AgentSimulator sim(table, std::move(population), 99);
  ppk::pp::NeverStableOracle oracle;
  for (auto _ : state) {
    sim.step(oracle);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AgentEngineSteps)
    ->Args({4, 120})
    ->Args({4, 960})
    ->Args({8, 960})
    ->Args({16, 960});

void BM_CountEngineSteps(benchmark::State& state) {
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  ppk::pp::CountSimulator sim(table, initial, 99);
  ppk::pp::NeverStableOracle oracle;
  for (auto _ : state) {
    sim.step(oracle);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountEngineSteps)
    ->Args({4, 120})
    ->Args({4, 960})
    ->Args({8, 960})
    ->Args({16, 960});

void BM_JumpEngineEffectiveSteps(benchmark::State& state) {
  // One iteration = one *effective* interaction (plus its skipped nulls);
  // items = drawn interactions so throughput is comparable with the other
  // engines.
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  ppk::pp::JumpSimulator sim(table, initial, 99);
  ppk::pp::NeverStableOracle oracle;
  std::uint64_t start = sim.interactions();
  for (auto _ : state) {
    if (!sim.step(oracle)) {
      state.SkipWithError("went silent");
      break;
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.interactions() - start));
}
// n chosen with n mod k == 1 so a free agent keeps flipping after
// stabilization: effective steps never run out, and the benchmark covers
// the jump engine's target regime (tiny effective probability).
BENCHMARK(BM_JumpEngineEffectiveSteps)
    ->Args({4, 961})
    ->Args({8, 961})
    ->Args({16, 961});

void BM_AgentEngineWithPatternOracle(benchmark::State& state) {
  // The oracle is notified on effective interactions only; this measures
  // its worst-case drag on the hot loop (compare with BM_AgentEngineSteps).
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const std::uint32_t n = 960;
  const KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Population population(n, protocol.num_states(),
                                 protocol.initial_state());
  ppk::pp::AgentSimulator sim(table, std::move(population), 99);
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n + 1);  // never
  oracle->reset(sim.population().counts());
  for (auto _ : state) {
    sim.step(*oracle);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AgentEngineWithPatternOracle)->Arg(4)->Arg(8)->Arg(16);

void BM_TransitionTableBuild(benchmark::State& state) {
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const KPartitionProtocol protocol(k);
  for (auto _ : state) {
    ppk::pp::TransitionTable table(protocol);
    benchmark::DoNotOptimize(table.is_symmetric());
  }
}
BENCHMARK(BM_TransitionTableBuild)->Arg(4)->Arg(16)->Arg(64);

void BM_FullStabilization(benchmark::State& state) {
  // End-to-end: one complete run to the stable pattern.  Reported as
  // items = interactions so throughput is comparable with the step
  // benchmarks.
  const auto k = static_cast<ppk::pp::GroupId>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  std::uint64_t seed = 7;
  std::uint64_t total_interactions = 0;
  for (auto _ : state) {
    ppk::pp::Population population(n, protocol.num_states(),
                                   protocol.initial_state());
    ppk::pp::AgentSimulator sim(table, std::move(population), seed++);
    auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    const auto result = sim.run(*oracle);
    total_interactions += result.interactions;
    benchmark::DoNotOptimize(result.interactions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_interactions));
}
BENCHMARK(BM_FullStabilization)->Args({4, 120})->Args({6, 120})->Args({8, 240});

}  // namespace

BENCHMARK_MAIN();
