// Robustness experiment: the k-partition system under churn.  Sweeps a
// small grid of fault rates (crashes, joins, corruption), each cell run
// both with the self-healing recovery layer and with the bare paper
// protocol, and reports recovery metrics: fraction of trials that
// re-stabilized, time-to-rebalance after the last fault, and the final
// spread of the committed group sizes.
//
// Expected reading: the bare protocol recovers from joins (a late initial
// agent is absorbed) but not from crashes or corruption -- those trials
// exhaust their interaction budget with spread > 1 and a broken Lemma 1
// invariant, which is the honest measurement of the paper's
// non-self-stabilization.  The recovery layer restores a recovered
// fraction of 1.0 at the cost of a reset wave.

#include <optional>

#include "analysis/recovery.hpp"
#include "bench_common.hpp"

namespace {

struct RateCell {
  const char* label;
  ppk::pp::FaultRates rates;
};

double mean_over(const std::vector<ppk::analysis::RecoveryTrial>& trials,
                 double (*pick)(const ppk::analysis::RecoveryTrial&)) {
  double total = 0.0;
  for (const auto& t : trials) total += pick(t);
  return trials.empty() ? 0.0 : total / static_cast<double>(trials.size());
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("fault_sweep",
               "Recovery metrics under injected faults, with and without "
               "the self-healing layer.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/10);
  auto n_flag = cli.flag<int>("n", 40, "initial population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  auto budget_flag = cli.flag<long long>(
      "budget", 2'000'000, "per-trial interaction budget");
  auto horizon_flag = cli.flag<long long>(
      "horizon", 100'000, "fault-injection window (interactions)");
  cli.parse(argc, argv);

  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);
  const int trials = *common.paper ? 100 : *common.trials;

  ppk::bench::print_header("Fault sweep",
                           "churn tolerance of uniform k-partition");

  // The csv flag defaults empty like the other benches; this bench also
  // honors it, and the CI smoke passes an explicit path.
  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv,
                std::vector<std::string>{
                    "mode", "faults", "k", "n", "crash_rate", "join_rate",
                    "corrupt_rate", "trials", "recovered_fraction",
                    "mean_rebalance_interactions", "mean_final_spread",
                    "mean_faults_applied", "mean_waves",
                    "mean_interactions"});
  }

  std::vector<RateCell> cells;
  cells.push_back({"none", {}});
  {
    ppk::pp::FaultRates r;
    r.join = 1e-4;
    cells.push_back({"join", r});
  }
  {
    ppk::pp::FaultRates r;
    r.crash = 1e-4;
    cells.push_back({"crash", r});
  }
  {
    ppk::pp::FaultRates r;
    r.corrupt = 1e-4;
    cells.push_back({"corrupt", r});
  }
  {
    ppk::pp::FaultRates r;
    r.crash = 1e-4;
    r.join = 1e-4;
    r.corrupt = 5e-5;
    r.sleep = 5e-5;
    cells.push_back({"mixed", r});
  }

  ppk::analysis::Table out({"faults", "mode", "recovered", "mean rebalance",
                            "mean spread", "mean faults", "mean waves"});
  for (const RateCell& cell : cells) {
    for (const bool with_recovery : {false, true}) {
      ppk::analysis::RecoveryOptions options;
      options.trials = static_cast<std::uint32_t>(trials);
      options.master_seed = static_cast<std::uint64_t>(*common.seed);
      options.max_interactions = static_cast<std::uint64_t>(*budget_flag);
      options.threads = static_cast<std::size_t>(*common.threads);
      options.rates = cell.rates;
      options.fault_horizon = static_cast<std::uint64_t>(*horizon_flag);
      options.with_recovery = with_recovery;

      const ppk::analysis::RecoveryResult result =
          ppk::analysis::measure_recovery(k, n, options);

      const double mean_faults = mean_over(
          result.trials, [](const ppk::analysis::RecoveryTrial& t) {
            return static_cast<double>(t.faults_applied);
          });
      const double mean_waves = mean_over(
          result.trials, [](const ppk::analysis::RecoveryTrial& t) {
            return static_cast<double>(t.waves);
          });
      const double mean_interactions = mean_over(
          result.trials, [](const ppk::analysis::RecoveryTrial& t) {
            return static_cast<double>(t.interactions);
          });
      const char* mode = with_recovery ? "self-healing" : "bare";

      out.row(cell.label, mode, result.recovered_fraction,
              result.rebalance.mean, result.spread.mean, mean_faults,
              mean_waves);
      if (csv) {
        csv->row(mode, cell.label, int{k}, n, cell.rates.crash,
                 cell.rates.join, cell.rates.corrupt, trials,
                 result.recovered_fraction, result.rebalance.mean,
                 result.spread.mean, mean_faults, mean_waves,
                 mean_interactions);
      }
    }
  }
  out.print(std::cout);
  std::printf(
      "\nReading: joins alone are absorbed by the bare protocol (a late\n"
      "initial agent fills remaining slots), but any crash or corruption\n"
      "permanently breaks its Lemma 1 bookkeeping -- those bare runs burn\n"
      "the whole interaction budget and end with spread > 1.  With the\n"
      "epoch-reset recovery layer every cell re-stabilizes to the uniform\n"
      "partition of the surviving population.\n");
  return 0;
}
