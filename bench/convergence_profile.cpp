// Convergence profile: the group-size trajectory of a single execution,
// sampled along the run -- the "how" behind the Fig. 3-6 totals.  Shows
// the staircase of grouping completions (each locked-in g1..gk set lifts
// every group size by one) and the long plateau while the last builders
// find their free agents.

#include <optional>

#include "analysis/timeseries.hpp"
#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("convergence_profile",
               "Group-size trajectory of one k-partition execution.");
  ppk::bench::CommonFlags common(cli);
  auto n_flag = cli.flag<int>("n", 120, "population size");
  auto k_flag = cli.flag<int>("k", 4, "number of groups");
  auto stride = cli.flag<long long>("stride", 0,
                                    "sample every this many interactions "
                                    "(0 = auto)");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);

  ppk::bench::print_header("Convergence profile",
                           "per-group sizes along one execution");

  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  ppk::pp::Population population(n, protocol.num_states(),
                                 protocol.initial_state());
  ppk::pp::AgentSimulator sim(table, std::move(population),
                              static_cast<std::uint64_t>(*common.seed));

  const std::uint64_t auto_stride = std::max<std::uint64_t>(1, n / 4);
  ppk::analysis::TimeSeries series(
      protocol,
      *stride > 0 ? static_cast<std::uint64_t>(*stride) : auto_stride);
  series.sample(0, sim.population(), /*force=*/true);
  sim.set_observer([&](const ppk::pp::SimEvent& event) {
    series.sample(event.interaction, sim.population());
  });
  auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  const auto result = sim.run(*oracle);
  series.sample(result.interactions, sim.population(), /*force=*/true);

  // Print a coarsened view: ~20 evenly spaced rows of the trajectory.
  const auto& rows = series.rows();
  std::printf("%12s", "interaction");
  for (ppk::pp::GroupId g = 1; g <= k; ++g) std::printf("  %5s%u", "G", g);
  std::printf("  spread\n");
  const std::size_t step = std::max<std::size_t>(1, rows.size() / 20);
  auto print_row = [&](const ppk::analysis::TimeSeries::Row& row) {
    std::uint32_t lo = UINT32_MAX;
    std::uint32_t hi = 0;
    std::printf("%12llu", static_cast<unsigned long long>(row.interaction));
    for (auto size : row.group_sizes) {
      lo = std::min(lo, size);
      hi = std::max(hi, size);
      std::printf("  %6u", size);
    }
    std::printf("  %6u\n", hi - lo);
  };
  for (std::size_t i = 0; i < rows.size(); i += step) print_row(rows[i]);
  if (!rows.empty() && (rows.size() - 1) % step != 0) {
    print_row(rows.back());
  }

  std::printf("\nstabilized after %llu interactions; final spread %u\n",
              static_cast<unsigned long long>(result.interactions),
              series.max_spread_since(result.interactions));

  if (!common.csv->empty()) {
    // Atomic (temp + rename): an interrupted run leaves any previous
    // trajectory file intact instead of a truncated one.
    ppk::io::AtomicFileWriter csv(*common.csv);
    series.write_csv(csv.stream());
    std::string error;
    if (!csv.commit(&error)) {
      std::fprintf(stderr, "cannot write trajectory: %s\n", error.c_str());
      return 1;
    }
    std::printf("full trajectory written to %s (%zu samples)\n",
                common.csv->c_str(), rows.size());
  }
  return 0;
}
