// Machine confirmation of the space lower bound behind the paper's
// optimality claim: the paper's protocol uses 3k-2 states and cites
// Yasumi et al. [25] for "four states are necessary and sufficient" at
// k = 2.  This bench sweeps EVERY symmetric protocol with 2 and 3 states
// (finite spaces: 64 and 354,294 candidates including initial-state and
// output-map choices) and reports that each candidate provably fails
// uniform bipartition on some population of size <= 8 -- decided exactly
// per candidate by the bottom-SCC verifier, no sampling involved.

#include "bench_common.hpp"
#include "util/stopwatch.hpp"
#include "verify/protocol_search.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("lower_bound_search",
               "Exhaustive sweep of all small symmetric protocols vs "
               "uniform bipartition.");
  ppk::bench::CommonFlags common(cli);
  cli.parse(argc, argv);

  ppk::bench::print_header(
      "Lower-bound search",
      "no symmetric protocol with < 4 states solves uniform bipartition");

  ppk::analysis::Table table({"states", "candidates", "survivors",
                              "largest n needed", "seconds"});
  for (ppk::pp::StateId states : {ppk::pp::StateId{2}, ppk::pp::StateId{3}}) {
    ppk::verify::SearchOptions options;
    ppk::Stopwatch timer;
    const auto result =
        ppk::verify::search_symmetric_bipartition(states, options);
    // Largest population size that was anyone's first failure.
    std::uint32_t largest_needed = 0;
    for (std::size_t i = 0; i < result.killed_by_size.size(); ++i) {
      if (result.killed_by_size[i] > 0) {
        largest_needed = options.population_sizes[i];
      }
    }
    table.row(int{states}, result.candidates, result.survivors,
              largest_needed, timer.seconds());

    std::printf("states = %d, kill profile:", int{states});
    for (std::size_t i = 0; i < result.killed_by_size.size(); ++i) {
      std::printf(" n=%u:%llu", options.population_sizes[i],
                  static_cast<unsigned long long>(result.killed_by_size[i]));
    }
    std::printf("\n");
    for (const auto& survivor : result.survivor_descriptions) {
      std::printf("  !! survivor: %s\n", survivor.c_str());
    }
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nReading: zero survivors at 2 and 3 states -- the [25] lower bound\n"
      "(4 states necessary for symmetric uniform bipartition with\n"
      "designated initial states under global fairness) holds, confirmed\n"
      "candidate-by-candidate.  Populations up to n = 6 suffice to kill\n"
      "every 3-state candidate; the paper's 4-state base case (= its\n"
      "protocol at k = 2) passes the same verifier.\n");
  return 0;
}
