// Extension experiment: the paper reports *averages* over 100 trials; this
// bench shows the distribution behind them.  Stabilization times are
// heavily right-skewed -- a handful of unlucky executions (a late builder
// collision forcing a full D-state rollback) dominate the mean, which is
// why the paper's Fig. 3 curves are jagged even at 100 trials.

#include <optional>
#include <vector>

#include "analysis/histogram.hpp"
#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("distribution_tails",
               "Distribution of stabilization times at fixed (n, k).");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/1000);
  auto n_flag = cli.flag<int>("n", 120, "population size");
  auto k_flag = cli.flag<int>("k", 6, "number of groups");
  auto buckets = cli.flag<int>("buckets", 16, "histogram buckets");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const auto k = static_cast<ppk::pp::GroupId>(*k_flag);
  const int trials = *common.paper ? 1000 : *common.trials;

  ppk::bench::print_header("Distribution tails",
                           "stabilization-time distribution behind the mean");

  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    ppk::pp::Population population(n, protocol.num_states(),
                                   protocol.initial_state());
    ppk::pp::AgentSimulator sim(
        table, std::move(population),
        ppk::derive_stream_seed(static_cast<std::uint64_t>(*common.seed),
                                static_cast<std::uint64_t>(trial)));
    auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    const auto result = sim.run(*oracle);
    samples.push_back(static_cast<double>(result.interactions));
  }

  const auto summary = ppk::analysis::summarize(samples);
  std::printf("k = %d, n = %u, %d trials\n", int{k}, n, trials);
  std::printf("  mean   %12.1f\n  median %12.1f\n  stddev %12.1f\n",
              summary.mean, summary.median, summary.stddev);
  std::printf("  p90    %12.1f\n  p99    %12.1f\n  max    %12.1f\n",
              ppk::analysis::quantile(samples, 0.90),
              ppk::analysis::quantile(samples, 0.99), summary.max);
  std::printf("  mean/median %.2f (right skew)\n\n",
              summary.mean / summary.median);

  const auto histogram = ppk::analysis::Histogram::from_samples(
      samples, static_cast<std::size_t>(*buckets));
  histogram.print(std::cout);

  if (!common.csv->empty()) {
    ppk::io::CsvFile csv(*common.csv,
                         {"bucket_lo", "bucket_hi", "count"});
    for (std::size_t b = 0; b < histogram.counts().size(); ++b) {
      csv.row(histogram.bucket_lo(b), histogram.bucket_hi(b),
              histogram.counts()[b]);
    }
  }
  std::printf(
      "\nReading: the mean sits well right of the median -- stabilization\n"
      "time has a heavy right tail (builder collisions force full D-state\n"
      "rollbacks), which is what makes the paper's averaged Fig. 3 curves\n"
      "jagged between adjacent n.\n");
  return 0;
}
