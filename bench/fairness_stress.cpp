// Extension experiment: global fairness guarantees *eventual* progress
// but puts no bound on an adversary's stalling.  The epsilon-fair
// adversary (pp/adversarial.hpp) steers interactions toward null pairs and
// free-agent flips with probability 1 - epsilon; because every pair keeps
// an epsilon-proportional chance, its infinite executions remain globally
// fair w.p. 1, so stabilization is still guaranteed (Theorem 1) -- only
// slower.  This bench sweeps epsilon and reports the slowdown relative to
// the uniform scheduler (epsilon = 1).

#include <optional>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/adversarial.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace {

double mean_to_stabilize(const ppk::core::KPartitionProtocol& protocol,
                         const ppk::pp::TransitionTable& table,
                         std::uint32_t n, double epsilon, int trials,
                         std::uint64_t master_seed) {
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    ppk::pp::AdversarialSimulator sim(
        protocol, table,
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        epsilon,
        ppk::derive_stream_seed(master_seed,
                                static_cast<std::uint64_t>(trial)));
    auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    const auto result = sim.run(*oracle, 4'000'000'000ULL);
    total += static_cast<double>(result.interactions);
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("fairness_stress",
               "Stabilization time under an epsilon-fair adversarial "
               "scheduler.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/30);
  auto n_flag = cli.flag<int>("n", 24, "population size");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const int trials = *common.paper ? 100 : *common.trials;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  ppk::bench::print_header("Fairness stress",
                           "epsilon-fair adversary vs the uniform scheduler");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "epsilon", "mean_interactions",
                                 "slowdown", "trials"});
  }

  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}}) {
    const ppk::core::KPartitionProtocol protocol(k);
    const ppk::pp::TransitionTable table(protocol);
    std::printf("--- k = %d, n = %u ---\n", int{k}, n);
    ppk::analysis::Table out({"epsilon", "mean interactions", "slowdown"});
    const double baseline =
        mean_to_stabilize(protocol, table, n, 1.0, trials, seed);
    for (double epsilon : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
      const double mean = epsilon == 1.0
                              ? baseline
                              : mean_to_stabilize(protocol, table, n, epsilon,
                                                  trials, seed);
      out.row(epsilon, mean, mean / baseline);
      if (csv) {
        csv->row(int{k}, n, epsilon, mean, mean / baseline, trials);
      }
    }
    out.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: every epsilon stabilizes eventually (the adversary is still\n"
      "globally fair), but the cost scales roughly like 1/epsilon: global\n"
      "fairness gives correctness, not speed -- the paper's open question 3\n"
      "(time under probabilistic fairness) in miniature.\n");
  return 0;
}
