// Figure 4 of the paper: the interactions needed for the i-th "grouping"
// (the i-th locked-in set of agents in g1..gk), i.e. the increments
// NI'_i = NI_i - NI_(i-1), stacked per n.  The paper's observations, which
// this bench lets you read off directly:
//   * NI'_1 < NI'_2 < ... except for the final settling of the n mod k
//     leftover agents (fewer free agents -> slower groupings), and
//   * for n = c*k + k and c*k + k + 1 the last grouping alone exceeds half
//     of the total.

#include <optional>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("fig4_grouping_breakdown",
               "Figure 4: per-grouping interaction increments NI'_i.");
  ppk::bench::CommonFlags common(cli);
  auto n_max_mult =
      cli.flag<int>("n-max-mult", 8, "sweep n up to this multiple of k");
  cli.parse(argc, argv);

  ppk::bench::print_header("Figure 4",
                           "NI'_i: interactions to achieve the i-th grouping");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv,
                std::vector<std::string>{"k", "n", "grouping_index",
                                         "mean_increment", "trials"});
  }

  auto options = common.experiment_options();
  options.track_groupings = true;

  for (ppk::pp::GroupId k : {ppk::pp::GroupId{4}, ppk::pp::GroupId{6}, ppk::pp::GroupId{8}}) {
    std::printf("--- k = %d ---\n", int{k});
    ppk::analysis::Table table(
        {"n", "groupings", "NI'_1", "NI'_last", "tail", "total",
         "last/total"});
    for (std::uint32_t n = 2u * k;
         n <= static_cast<std::uint32_t>(*n_max_mult) * k; ++n) {
      const auto r = ppk::analysis::measure_kpartition(k, n, options);
      const auto& inc = r.breakdown.mean_increment;
      const double last = inc.empty() ? 0.0 : inc.back();
      table.row(n, r.breakdown.groupings, inc.empty() ? 0.0 : inc.front(),
                last, r.breakdown.mean_tail, r.interactions.mean,
                r.interactions.mean > 0
                    ? (last + r.breakdown.mean_tail) / r.interactions.mean
                    : 0.0);
      if (csv) {
        for (std::size_t i = 0; i < inc.size(); ++i) {
          csv->row(int{k}, n, i + 1, inc[i], r.trials);
        }
        csv->row(int{k}, n, std::string("tail"), r.breakdown.mean_tail,
                 r.trials);
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 4): the increments grow with the grouping\n"
      "index; at n = c*k + k (+1) the final grouping plus tail exceeds half\n"
      "of all interactions (see the last/total column).\n");
  common.write_metrics("fig4_grouping_breakdown");
  return 0;
}
