// Figure 5 of the paper: interactions vs n = 120 * n' for n' = 1..8 and
// k in {3, 4, 5, 6}, with n chosen so n mod k = 0 to suppress the Fig. 3
// sawtooth.  The paper reads off growth that is "more than linear but less
// than exponential" in n; the printed growth-factor column makes that
// directly visible (a constant factor per doubling would be power-law
// growth; the factor should exceed 2 but not blow up).

#include <optional>

#include "analysis/fitting.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("fig5_scaling_n",
               "Figure 5: interactions vs n = 120*n' for k in {3,4,5,6}.");
  ppk::bench::CommonFlags common(cli);
  auto max_mult = cli.flag<int>("max-mult", 8, "largest n' (n = 120*n')");
  cli.parse(argc, argv);

  ppk::bench::print_header("Figure 5",
                           "interactions vs n (n mod k = 0, n = 120*n')");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "mean_interactions", "stddev",
                                 "ci95", "trials"});
  }

  const auto options = common.experiment_options();
  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}, ppk::pp::GroupId{5}, ppk::pp::GroupId{6}}) {
    std::printf("--- k = %d ---\n", int{k});
    ppk::analysis::Table table(
        {"n", "mean interactions", "stddev", "ci95", "mean/prev"});
    double previous = 0.0;
    std::vector<double> xs;
    std::vector<double> ys;
    for (int mult = 1; mult <= *max_mult; ++mult) {
      const auto n = static_cast<std::uint32_t>(120 * mult);
      const auto r = ppk::analysis::measure_kpartition(k, n, options);
      table.row(n, r.interactions.mean, r.interactions.stddev,
                r.interactions.ci95,
                previous > 0 ? r.interactions.mean / previous : 0.0);
      previous = r.interactions.mean;
      xs.push_back(n);
      ys.push_back(r.interactions.mean);
      if (csv) {
        csv->row(int{k}, n, r.interactions.mean, r.interactions.stddev,
                 r.interactions.ci95, r.trials);
      }
    }
    table.print(std::cout);
    if (xs.size() >= 3) {
      const auto power = ppk::analysis::fit_power_law(xs, ys);
      const auto exponential = ppk::analysis::fit_exponential(xs, ys);
      std::printf("fit: interactions ~ n^%.2f (R^2 %.3f); exponential model"
                  " R^2 %.3f\n",
                  power.exponent, power.r_squared, exponential.r_squared);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 5): monotone growth in n, superlinear but\n"
      "clearly subexponential -- the fitted power-law exponent sits between\n"
      "1 and ~2.5 and beats the exponential model on every k.\n");
  common.write_metrics("fig5_scaling_n");
  return 0;
}
