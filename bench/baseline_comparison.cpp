// Baseline comparison (paper Section 1 context):
//
//  1. KPartitionProtocol      -- the paper's contribution, 3k-2 states,
//                                exact uniformity for every n, any k >= 2.
//  2. RecursiveBipartition    -- the intro's prior approach (k = 2^h by
//                                repeated bipartition), also 3k-2 states,
//                                but exact only when k | n; the bench
//                                measures its deviation elsewhere.
//  3. ApproxPartition         -- reconstruction in the spirit of [14]:
//                                fewer guarantees (>= n/(2k) per group),
//                                different state budget.
//
// Columns: states/agent, mean interactions to termination, and the maximum
// group-size spread (max - min; uniform means spread <= 1).

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "core/approx_partition.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "core/recursive_bipartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace {

struct Row {
  double mean_interactions = 0.0;
  double mean_spread = 0.0;
  double max_spread = 0.0;
  int finished = 0;
};

/// Runs `trials` executions of `protocol`, stopping each at `make_oracle`'s
/// stability signal or at a budget for protocols that never go silent.
Row run_protocol(const ppk::pp::Protocol& protocol,
                 const std::function<std::unique_ptr<ppk::pp::StabilityOracle>(
                     const ppk::pp::TransitionTable&)>& make_oracle,
                 std::uint32_t n, int trials, std::uint64_t master_seed,
                 std::uint64_t budget) {
  const ppk::pp::TransitionTable table(protocol);
  Row row;
  double sum_interactions = 0.0;
  double sum_spread = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    ppk::pp::Population population(n, protocol.num_states(),
                                   protocol.initial_state());
    ppk::pp::AgentSimulator sim(
        table, std::move(population),
        ppk::derive_stream_seed(master_seed,
                                static_cast<std::uint64_t>(trial)));
    auto oracle = make_oracle(table);
    const auto result = sim.run(*oracle, budget);
    if (result.stabilized) ++row.finished;
    sum_interactions += static_cast<double>(result.interactions);
    const auto sizes = sim.population().group_sizes(protocol);
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    const double spread = static_cast<double>(*hi - *lo);
    sum_spread += spread;
    row.max_spread = std::max(row.max_spread, spread);
  }
  row.mean_interactions = sum_interactions / trials;
  row.mean_spread = sum_spread / trials;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("baseline_comparison",
               "Paper's protocol vs recursive bipartition vs approximate "
               "partition.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/30);
  cli.parse(argc, argv);
  const int trials = *common.paper ? 100 : *common.trials;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  ppk::bench::print_header("Baseline comparison",
                           "states, speed, and uniformity guarantees");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "protocol", "k", "n", "states",
                                 "mean_interactions", "mean_spread",
                                 "max_spread", "finished", "trials"});
  }

  ppk::analysis::Table table({"protocol", "k", "n", "states",
                              "mean interactions", "mean spread",
                              "max spread"});

  // k = 4 and k = 8 so the recursive baseline applies; n both divisible
  // and non-divisible by k to expose the deviation.
  struct Case {
    unsigned h;
    std::uint32_t n;
  };
  for (const Case& c : {Case{2, 64}, Case{2, 67}, Case{3, 64}, Case{3, 70}}) {
    const auto k = static_cast<ppk::pp::GroupId>(1u << c.h);

    {
      const ppk::core::KPartitionProtocol protocol(k);
      const Row row = run_protocol(
          protocol,
          [&](const ppk::pp::TransitionTable&) {
            return ppk::core::stable_pattern_oracle(protocol, c.n);
          },
          c.n, trials, seed, 2'000'000'000ULL);
      table.row("kpartition", int{k}, c.n, int{protocol.num_states()},
                row.mean_interactions, row.mean_spread, row.max_spread);
      if (csv) {
        csv->row("kpartition", int{k}, c.n, int{protocol.num_states()},
                 row.mean_interactions, row.mean_spread, row.max_spread,
                 row.finished, trials);
      }
    }
    {
      const ppk::core::RecursiveBipartitionProtocol protocol(c.h);
      // Not silent when agents strand (they flip forever): fixed budget,
      // long enough that all commits happen first.
      const Row row = run_protocol(
          protocol,
          [&](const ppk::pp::TransitionTable& t) {
            return std::make_unique<ppk::pp::SilenceOracle>(t);
          },
          c.n, trials, seed, static_cast<std::uint64_t>(c.n) * 20'000);
      table.row("recursive-bipartition", int{k}, c.n,
                int{protocol.num_states()}, row.mean_interactions,
                row.mean_spread, row.max_spread);
      if (csv) {
        csv->row("recursive-bipartition", int{k}, c.n,
                 int{protocol.num_states()}, row.mean_interactions,
                 row.mean_spread, row.max_spread, row.finished, trials);
      }
    }
    {
      const ppk::core::ApproxPartitionProtocol protocol(k);
      const Row row = run_protocol(
          protocol,
          [&](const ppk::pp::TransitionTable& t) {
            return std::make_unique<ppk::pp::SilenceOracle>(t);
          },
          c.n, trials, seed, 2'000'000'000ULL);
      table.row("approx-partition", int{k}, c.n, int{protocol.num_states()},
                row.mean_interactions, row.mean_spread, row.max_spread);
      if (csv) {
        csv->row("approx-partition", int{k}, c.n, int{protocol.num_states()},
                 row.mean_interactions, row.mean_spread, row.max_spread,
                 row.finished, trials);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: only the paper's protocol keeps the spread <= 1 for every\n"
      "n.  Recursive bipartition matches it when k | n (and converges in\n"
      "far fewer interactions) but its strandings push the spread beyond 1\n"
      "otherwise; the approximate baseline trades uniformity for speed\n"
      "entirely.  (recursive-bipartition rows report interactions within a\n"
      "fixed budget -- stragglers keep the configuration live forever.)\n");
  return 0;
}
