// The paper's open question 3, explored empirically: "What is the time
// complexity of the uniform k-partition problem under probabilistic
// fairness?  Is there a protocol such that the time complexity is
// polynomial of n and k?"
//
// The uniform-random scheduler *is* the probabilistic-fairness model, so
// for the paper's own protocol the question reduces to measuring its
// scaling law.  This bench runs a (k, n) cross-sweep and fits, per k, the
// power-law exponent of interactions in n, and per n, the exponential
// ratio in k:
//
//   interactions ~ a(k) * n^b(k)        with b(k) ~ 2 and a(k) growing
//   interactions ~ c(n) * r(n)^k        with r(n) > 1
//
// Empirical answer for THIS protocol: polynomial in n at every fixed k
// (b stays near 2, consistent with the two-leftover pairing bottleneck
// being Theta(n^2)), but exponential in k -- so the paper's protocol does
// not settle the open question positively, and a polynomial-in-k protocol
// would need a different builder mechanism.

#include <optional>
#include <vector>

#include "analysis/fitting.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("open_question_time",
               "Scaling-law fits for the paper's open question 3.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/25);
  cli.parse(argc, argv);

  ppk::bench::print_header(
      "Open question 3",
      "time complexity under probabilistic fairness, fitted");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "mean_interactions", "trials"});
  }

  const auto options = common.experiment_options();
  const std::vector<ppk::pp::GroupId> ks{3, 4, 5, 6, 8};
  const std::vector<std::uint32_t> multipliers{8, 16, 32, 64};

  // means[ki][ni]
  std::vector<std::vector<double>> means(ks.size());
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    for (std::uint32_t mult : multipliers) {
      const std::uint32_t n = ks[ki] * mult;  // keep n mod k = 0
      const auto r = ppk::analysis::measure_kpartition(ks[ki], n, options);
      means[ki].push_back(r.interactions.mean);
      if (csv) csv->row(int{ks[ki]}, n, r.interactions.mean, r.trials);
    }
  }

  std::printf("--- per-k power law in n (interactions ~ n^b) ---\n");
  ppk::analysis::Table n_table({"k", "exponent b", "R^2"});
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::vector<double> xs;
    for (std::uint32_t mult : multipliers) {
      xs.push_back(static_cast<double>(ks[ki] * mult));
    }
    const auto fit = ppk::analysis::fit_power_law(xs, means[ki]);
    n_table.row(int{ks[ki]}, fit.exponent, fit.r_squared);
  }
  n_table.print(std::cout);

  std::printf("\n--- per-n' exponential in k (interactions ~ r^k at "
              "n = k*mult) ---\n");
  ppk::analysis::Table k_table({"multiplier n/k", "ratio r", "R^2"});
  for (std::size_t mi = 0; mi < multipliers.size(); ++mi) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      xs.push_back(ks[ki]);
      ys.push_back(means[ki][mi]);
    }
    const auto fit = ppk::analysis::fit_exponential(xs, ys);
    k_table.row(multipliers[mi], fit.ratio, fit.r_squared);
  }
  k_table.print(std::cout);

  std::printf(
      "\nReading: the n-exponent hovers around 2 for every k (polynomial in\n"
      "n under probabilistic fairness), while the dependence on k remains\n"
      "exponential at every population scale.  Note the caveat: the sweep\n"
      "holds n/k fixed, so the per-n' exponential ratio folds in both the\n"
      "k-dependence and the accompanying n growth -- it upper-bounds the\n"
      "pure k effect (compare fig6, which isolates k at fixed n = 960).\n"
      "The paper's protocol is thus polynomial in n but not in k; a\n"
      "positive answer to open question 3 needs a different construction.\n");
  return 0;
}
