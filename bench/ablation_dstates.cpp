// Ablation: why does the protocol need the D states?
//
// The "basic strategy" (transitions 1-7, Section 3.2 of the paper) is the
// full protocol with rules 8-10 removed.  This bench measures, per (k, n),
// how often it wedges: a run wedges when it reaches a *silent*
// configuration (no effective transition enabled) whose partition is not
// uniform -- under the basic strategy every execution ends in some silent
// configuration, so wedge rate = 1 - success rate.  The full protocol by
// Theorem 1 stabilizes uniformly in 100% of runs; shown alongside for the
// same seeds.

#include <optional>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace {

struct WedgeStats {
  int wedged = 0;
  int uniform = 0;
  int undecided = 0;  // budget exhausted before silence
};

WedgeStats run_basic(ppk::pp::GroupId k, std::uint32_t n, int trials,
                     std::uint64_t master_seed) {
  const ppk::core::BasicStrategyProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  WedgeStats stats;
  for (int trial = 0; trial < trials; ++trial) {
    ppk::pp::Population population(n, protocol.num_states(),
                                   protocol.initial_state());
    ppk::pp::AgentSimulator sim(
        table, std::move(population),
        ppk::derive_stream_seed(master_seed,
                                static_cast<std::uint64_t>(trial)));
    ppk::pp::SilenceOracle oracle(table);
    const auto result = sim.run(oracle, 100'000'000ULL);
    if (!result.stabilized) {
      ++stats.undecided;
      continue;
    }
    const auto sizes = sim.population().group_sizes(protocol);
    if (ppk::pp::is_uniform_partition(sizes)) {
      ++stats.uniform;
    } else {
      ++stats.wedged;
    }
  }
  return stats;
}

int run_full(ppk::pp::GroupId k, std::uint32_t n, int trials,
             std::uint64_t master_seed) {
  const ppk::core::KPartitionProtocol protocol(k);
  const ppk::pp::TransitionTable table(protocol);
  int uniform = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ppk::pp::Population population(n, protocol.num_states(),
                                   protocol.initial_state());
    ppk::pp::AgentSimulator sim(
        table, std::move(population),
        ppk::derive_stream_seed(master_seed,
                                static_cast<std::uint64_t>(trial)));
    auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    if (sim.run(*oracle, 1'000'000'000ULL).stabilized &&
        ppk::pp::is_uniform_partition(
            sim.population().group_sizes(protocol))) {
      ++uniform;
    }
  }
  return uniform;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("ablation_dstates",
               "Failure rate of the basic strategy (rules 1-7) vs the full "
               "protocol.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/100);
  cli.parse(argc, argv);
  const int trials = *common.paper ? 100 : *common.trials;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  ppk::bench::print_header(
      "Ablation: D states",
      "wedge rate of the basic strategy (transitions 1-7 only)");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "n", "basic_wedged", "basic_uniform",
                                 "full_uniform", "trials"});
  }

  ppk::analysis::Table table({"k", "n", "basic wedge rate",
                              "basic uniform rate", "full uniform rate"});
  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}, ppk::pp::GroupId{5}, ppk::pp::GroupId{6}}) {
    for (std::uint32_t mult : {2u, 3u, 5u, 10u}) {
      const std::uint32_t n = mult * k;
      const WedgeStats basic = run_basic(k, n, trials, seed);
      const int full = run_full(k, n, trials, seed);
      const auto rate = [&](int count) {
        return static_cast<double>(count) / trials;
      };
      table.row(int{k}, n, rate(basic.wedged), rate(basic.uniform),
                rate(full));
      if (csv) {
        csv->row(int{k}, n, basic.wedged, basic.uniform, full, trials);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: without rules 8-10 a non-trivial fraction of executions\n"
      "wedges in a non-uniform silent configuration (paper Section 3.2: this\n"
      "happens whenever >= ceil(n/k) builders appear).  The full protocol\n"
      "stabilizes uniformly in every run, as Theorem 1 guarantees.\n");
  return 0;
}
