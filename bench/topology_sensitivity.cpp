// Extension experiment: how sensitive is the protocol to the complete-
// interaction-graph assumption -- and what does exact wedge detection buy?
//
// The paper's reachability lemmas (2-5) let *any* two agents interact.  On
// restricted graphs that argument breaks: a builder (m state) can be
// walled in by committed neighbours with no free agent adjacent, and the
// execution stalls in a non-stable configuration forever.  This bench
// quantifies the effect three ways, and emits the machine-readable report
// (BENCH_TOPOLOGY.json, schema ppk-bench-topology-v1) that the CI
// topology-smoke job gates with scripts/check_bench_regression.py:
//
//  1. Sweep.  Stabilization rate and time on the complete graph,
//     Erdos-Renyi graphs of shrinking density, the star, and the ring,
//     under BOTH graph engines: the per-draw GraphSimulator (which burns
//     its whole budget on a wedged run -- it cannot tell a dead
//     configuration from a slow one) and the live-edge GraphJumpSimulator
//     (which reports `stalled` the moment zero directed edges are live).
//     Trials run through the thread-pooled Monte-Carlo driver; per-trial
//     seeds come from derive_stream_seed, so every row is bit-reproducible
//     at any --threads value.
//
//  2. Wedged-ring speedup.  A hand-wedged configuration (all g1 plus two
//     antipodal m2 builders on a ring of n >= 1e5) is dead-silent on the
//     graph but NOT globally silent, so the per-draw engine spins on null
//     draws until its budget runs out while the live-edge engine proves
//     the wedge in O(1) after setup.  The measured speedup understates the
//     real gap: the per-draw engine is charged a budget orders of
//     magnitude below the default (burning kDefaultInteractionBudget
//     would take hours), and its cost scales linearly with whatever
//     budget a user actually grants.
//
//  3. ER generation.  Building connected G(n, p = 2 ln n / n) at n = 1e6
//     via the geometric-skip sampler: expected O(n + m) work, timed, with
//     the connectivity double-checked.  (The quadratic rejection sampler
//     this replaced could not finish this row at all.)
//
// Calibration.  As in batch_throughput: timed measurements interleave
// slices of a fixed xoshiro256** kernel, whose aggregate rate samples the
// machine's momentary effective frequency; the report carries it as
// calibration_rate so the regression gate can divide it out, and
// rep_spread (fractional spread of per-rep calibrated figures) so the
// gate's tolerance widens exactly when the machine was noisy.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/graph_jump_simulator.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/interaction_graph.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using ppk::pp::InteractionGraph;

volatile std::uint64_t g_calibration_sink = 0;

/// One slice of the fixed ALU-bound calibration kernel; returns its
/// duration.  Aggregated slice rate tracks the machine's momentary
/// effective frequency (see batch_throughput.cpp for the full rationale).
double calibration_slice(std::uint64_t* draws) {
  constexpr std::uint64_t kSliceDraws = 1ULL << 21;
  ppk::Xoshiro256 rng(0x9E3779B97F4A7C15ULL);
  const ppk::Stopwatch clock;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < kSliceDraws; ++i) acc += rng();
  g_calibration_sink = acc;
  *draws += kSliceDraws;
  return clock.seconds();
}

// ---------------------------------------------------------------------------
// 1. Topology sweep through the Monte-Carlo driver.

struct SweepRow {
  int k = 0;
  std::string topology;
  const char* engine = "";
  double avg_degree = 0.0;
  double stabilized_rate = 0.0;
  double stalled_rate = 0.0;
  double mean_interactions_when_stabilized = 0.0;
  int trials = 0;
};

SweepRow run_sweep_point(
    const ppk::core::KPartitionProtocol& protocol,
    const ppk::pp::TransitionTable& table, std::uint32_t n,
    const std::function<InteractionGraph(std::uint64_t)>& make_graph,
    ppk::pp::Engine engine, int trials, std::uint64_t master_seed,
    std::uint64_t budget, std::size_t threads) {
  ppk::pp::MonteCarloOptions options;
  options.trials = static_cast<std::uint32_t>(trials);
  options.master_seed = master_seed;
  options.max_interactions = budget;
  options.engine = engine;
  options.threads = threads;
  options.graph = make_graph;
  const auto result = ppk::pp::run_monte_carlo(
      protocol, table, n,
      [&] { return ppk::core::stable_pattern_oracle(protocol, n); }, options);

  SweepRow row;
  row.trials = trials;
  row.engine = engine == ppk::pp::Engine::kGraph ? "graph" : "live-edge";
  int stabilized = 0;
  int stalled = 0;
  double total = 0.0;
  for (const auto& trial : result.trials) {
    if (trial.stabilized) {
      ++stabilized;
      total += static_cast<double>(trial.interactions);
    }
    if (trial.stalled) ++stalled;
  }
  row.stabilized_rate = static_cast<double>(stabilized) / trials;
  row.stalled_rate = static_cast<double>(stalled) / trials;
  row.mean_interactions_when_stabilized =
      stabilized > 0 ? total / stabilized : 0.0;
  return row;
}

// ---------------------------------------------------------------------------
// 2. Wedged-ring speedup: per-draw budget burn vs O(1) wedge detection.

/// All agents g1 except two antipodal m2 builders: dead-silent on the ring
/// (every adjacent pair is null) yet globally non-stable, so only exact
/// wedge detection can end the run before the budget does.  Built with
/// per-agent placement: a Counts-constructed population would place the
/// two builders adjacently.
ppk::pp::Population wedged_population(
    const ppk::core::KPartitionProtocol& protocol, std::uint32_t n) {
  ppk::pp::Population population(n, protocol.num_states(), protocol.g(1));
  population.set_state(0, protocol.m(2));
  population.set_state(n / 2, protocol.m(2));
  return population;
}

struct SpeedupReport {
  std::uint32_t n = 0;
  int k = 0;
  std::uint64_t graph_budget = 0;
  double graph_seconds = 0.0;       // best per-trial seconds across reps
  double live_seconds = 0.0;        // best per-trial seconds across reps
  std::uint64_t live_trials = 0;    // trials timed per rep to fill the window
  double speedup = 0.0;
  double calibration_rate = 0.0;    // best across reps
  double graph_rep_spread = 0.0;
  double live_rep_spread = 0.0;
  bool live_detected_wedge = false;  // stalled at 0 interactions every trial
};

SpeedupReport measure_wedged_ring_speedup(std::uint32_t n,
                                          std::uint64_t graph_budget,
                                          std::uint64_t seed, int reps) {
  constexpr int kK = 4;
  constexpr double kMinLiveWindowSeconds = 0.05;
  const ppk::core::KPartitionProtocol protocol(kK);
  const ppk::pp::TransitionTable table(protocol);

  SpeedupReport report;
  report.n = n;
  report.k = kK;
  report.graph_budget = graph_budget;
  report.live_detected_wedge = true;

  double graph_lo = 0.0, graph_hi = 0.0, live_lo = 0.0, live_hi = 0.0;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    std::uint64_t cal_draws = 0;
    double cal_seconds = calibration_slice(&cal_draws);

    // Per-draw engine: one full trial (construction included; the budget
    // burn dominates).  Same seed every rep -- identical work, so the
    // best time is a pure noise floor.
    const ppk::Stopwatch graph_clock;
    {
      ppk::pp::GraphSimulator sim(table, InteractionGraph::ring(n),
                                  wedged_population(protocol, n), seed);
      auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
      const auto r = sim.run(*oracle, graph_budget);
      if (r.stabilized || r.interactions != graph_budget) {
        std::fprintf(stderr,
                     "wedged ring unexpectedly advanced (interactions=%llu)\n",
                     static_cast<unsigned long long>(r.interactions));
      }
    }
    const double graph_seconds = graph_clock.seconds();

    cal_seconds += calibration_slice(&cal_draws);

    // Live-edge engine: full trials (construction + liveness scan + O(1)
    // wedge proof) repeated until the window is long enough to time.
    std::uint64_t live_trials = 0;
    const ppk::Stopwatch live_clock;
    while (live_clock.seconds() < kMinLiveWindowSeconds) {
      ppk::pp::GraphJumpSimulator sim(table, InteractionGraph::ring(n),
                                      wedged_population(protocol, n), seed);
      auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
      const auto r = sim.run(*oracle, graph_budget);
      if (r.stabilized || r.interactions != 0) report.live_detected_wedge = false;
      ++live_trials;
    }
    const double live_seconds =
        live_clock.seconds() / static_cast<double>(live_trials);

    cal_seconds += calibration_slice(&cal_draws);
    const double cal_rate = static_cast<double>(cal_draws) / cal_seconds;
    report.calibration_rate = std::max(report.calibration_rate, cal_rate);

    if (rep == 0 || graph_seconds < report.graph_seconds) {
      report.graph_seconds = graph_seconds;
    }
    if (rep == 0 || live_seconds < report.live_seconds) {
      report.live_seconds = live_seconds;
      report.live_trials = live_trials;
    }
    // Spread of calibrated per-rep costs: the row's own noise estimate.
    const double graph_norm = graph_seconds * cal_rate;
    const double live_norm = live_seconds * cal_rate;
    graph_lo = rep == 0 ? graph_norm : std::min(graph_lo, graph_norm);
    graph_hi = rep == 0 ? graph_norm : std::max(graph_hi, graph_norm);
    live_lo = rep == 0 ? live_norm : std::min(live_lo, live_norm);
    live_hi = rep == 0 ? live_norm : std::max(live_hi, live_norm);
  }
  report.graph_rep_spread = graph_hi > 0.0 ? 1.0 - graph_lo / graph_hi : 0.0;
  report.live_rep_spread = live_hi > 0.0 ? 1.0 - live_lo / live_hi : 0.0;
  report.speedup =
      report.live_seconds > 0.0 ? report.graph_seconds / report.live_seconds
                                : 0.0;
  return report;
}

// ---------------------------------------------------------------------------
// 3. Connected G(n, p) generation at n = 1e6 near the threshold.

struct ErGenerationReport {
  std::uint32_t n = 0;
  double p = 0.0;
  double seconds = 0.0;  // best generation time across reps
  std::uint64_t edges = 0;
  bool connected = false;
  double calibration_rate = 0.0;
  double rep_spread = 0.0;
};

ErGenerationReport measure_er_generation(std::uint32_t n, std::uint64_t seed,
                                         int reps) {
  ErGenerationReport report;
  report.n = n;
  report.p = 2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
  double lo = 0.0, hi = 0.0;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    std::uint64_t cal_draws = 0;
    double cal_seconds = calibration_slice(&cal_draws);
    const ppk::Stopwatch clock;
    const auto graph =
        InteractionGraph::try_erdos_renyi(n, report.p, seed, /*max_attempts=*/8);
    const double seconds = clock.seconds();
    cal_seconds += calibration_slice(&cal_draws);
    const double cal_rate = static_cast<double>(cal_draws) / cal_seconds;
    report.calibration_rate = std::max(report.calibration_rate, cal_rate);
    if (rep == 0 || seconds < report.seconds) {
      report.seconds = seconds;
      report.edges = graph ? graph->edges().size() : 0;
      // try_erdos_renyi only returns connected samples; double-check the
      // invariant rather than trusting it (outside the timed window).
      report.connected = graph && graph->is_connected();
    }
    const double norm = seconds * cal_rate;
    lo = rep == 0 ? norm : std::min(lo, norm);
    hi = rep == 0 ? norm : std::max(hi, norm);
  }
  report.rep_spread = hi > 0.0 ? 1.0 - lo / hi : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("topology_sensitivity",
               "Stabilization rate and time by interaction-graph topology, "
               "plus the live-edge wedge-detection speedup report.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/30);
  auto n_flag = cli.flag<int>("n", 24, "population size for the sweep");
  auto budget_flag = cli.flag<long long>(
      "budget", 5'000'000, "interaction budget per sweep trial");
  auto smoke = cli.flag<bool>(
      "smoke", false,
      "CI-sized run: fewer trials, smaller budgets (same n for the wedged "
      "and ER rows -- those are the acceptance bar)");
  auto reps = cli.flag<int>(
      "reps", 1,
      "timed measurements per report row; best figure kept (use >= 3 when "
      "regenerating the committed BENCH_TOPOLOGY.json)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);
  ppk::bench::install_sigint_handler();

  const auto n = static_cast<std::uint32_t>(*n_flag);
  const int trials = *common.paper ? 100 : (*smoke ? 8 : *common.trials);
  const auto budget = *smoke ? std::uint64_t{1'000'000}
                             : static_cast<std::uint64_t>(*budget_flag);
  const auto seed = static_cast<std::uint64_t>(*common.seed);
  const auto threads = static_cast<std::size_t>(std::max(0, *common.threads));

  // The wedged and ER rows keep their full problem sizes even under
  // --smoke (n >= 1e5 wedged ring, n = 1e6 ER generation are the
  // acceptance bar); only the per-draw engine's charged budget shrinks.
  const std::uint32_t wedged_n = 100'000;
  const std::uint64_t wedged_budget =
      *smoke ? 50'000'000ULL : 200'000'000ULL;
  const std::uint32_t er_n = 1'000'000;

  ppk::bench::print_header(
      "Topology sensitivity",
      "the complete-graph assumption, stress-tested (k-partition)");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv,
                std::vector<std::string>{"k", "topology", "engine",
                                         "avg_degree", "stabilized_rate",
                                         "stalled_rate", "mean_interactions",
                                         "trials"});
  }

  struct Topology {
    const char* name;
    std::function<InteractionGraph(std::uint64_t)> make;
  };
  const double logn_over_n =
      2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
  const std::vector<Topology> topologies = {
      {"complete",
       [&](std::uint64_t) { return InteractionGraph::complete(n); }},
      {"er(p=0.5)",
       [&](std::uint64_t s) { return InteractionGraph::erdos_renyi(n, 0.5, s); }},
      {"er(p=0.2)",
       [&](std::uint64_t s) { return InteractionGraph::erdos_renyi(n, 0.2, s); }},
      {"er(p=2ln(n)/n)",
       [&](std::uint64_t s) {
         return InteractionGraph::erdos_renyi(n, logn_over_n, s);
       }},
      {"star", [&](std::uint64_t) { return InteractionGraph::star(n); }},
      {"ring", [&](std::uint64_t) { return InteractionGraph::ring(n); }},
  };
  const std::vector<ppk::pp::Engine> engines = {ppk::pp::Engine::kGraph,
                                                ppk::pp::Engine::kGraphJump};

  std::vector<SweepRow> sweep;
  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}}) {
    // Ctrl-C: the in-flight point finishes, the sweep stops here, and the
    // report below is still written (flagged interrupted) atomically.
    if (ppk::bench::interrupted()) break;
    const ppk::core::KPartitionProtocol protocol(k);
    const ppk::pp::TransitionTable table(protocol);
    std::printf("--- k = %d, n = %u ---\n", int{k}, n);
    ppk::analysis::Table out({"topology", "engine", "avg degree",
                              "stabilized rate", "stalled rate",
                              "mean interactions (stabilized runs)"});
    for (const Topology& topology : topologies) {
      if (ppk::bench::interrupted()) break;
      // Representative instance for the degree column only (randomized
      // topologies resample per trial inside the driver).
      const double avg_degree =
          topology.make(ppk::derive_stream_seed(seed, 0)).average_degree();
      for (const auto engine : engines) {
        if (ppk::bench::interrupted()) break;
        SweepRow row = run_sweep_point(protocol, table, n, topology.make,
                                       engine, trials, seed, budget, threads);
        row.k = int{k};
        row.topology = topology.name;
        row.avg_degree = avg_degree;
        out.row(row.topology, row.engine, row.avg_degree, row.stabilized_rate,
                row.stalled_rate, row.mean_interactions_when_stabilized);
        if (csv) {
          csv->row(row.k, row.topology, row.engine, row.avg_degree,
                   row.stabilized_rate, row.stalled_rate,
                   row.mean_interactions_when_stabilized, row.trials);
        }
        sweep.push_back(std::move(row));
      }
    }
    out.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: the complete graph stabilizes in 100%% of runs (Theorem 1).\n"
      "Everything sparser wedges in most runs -- builders get walled in by\n"
      "committed neighbours, which the complete graph makes impossible.  The\n"
      "paper's complete-interaction-graph assumption is load-bearing, not a\n"
      "modelling convenience.  (Stabilized-run means are survivorship-biased\n"
      "low on sparse graphs: only lucky executions finish.)  The per-draw\n"
      "engine burns its whole budget on every wedged trial (stalled rate 0\n"
      "by construction: it cannot tell dead from slow); the live-edge\n"
      "engine's stalled rate is the measured wedge rate, detected exactly.\n\n");

  // After SIGINT the wedged-ring and ER rows are skipped entirely (they
  // are the expensive tail); the report still carries the sweep points
  // that completed, flagged interrupted below.
  SpeedupReport speedup;
  ErGenerationReport er;
  if (!ppk::bench::interrupted()) {
    speedup = measure_wedged_ring_speedup(wedged_n, wedged_budget, seed,
                                          *reps);
    std::printf(
        "Wedged ring, n = %u, k = %d: per-draw engine burns %.2fs over %llu\n"
        "budgeted draws; live-edge proves the wedge in %.2fms per trial\n"
        "(construction included) -- %.0fx, understated since the per-draw\n"
        "cost scales with whatever budget is granted.\n\n",
        speedup.n, speedup.k, speedup.graph_seconds,
        static_cast<unsigned long long>(speedup.graph_budget),
        speedup.live_seconds * 1e3, speedup.speedup);
  }
  if (!ppk::bench::interrupted()) {
    er = measure_er_generation(er_n, seed, *reps);
    std::printf(
        "Connected G(n = %u, p = 2ln(n)/n): %llu edges in %.2fs, connected:\n"
        "%s (geometric-skip sampler, expected O(n + m)).\n",
        er.n, static_cast<unsigned long long>(er.edges), er.seconds,
        er.connected ? "yes" : "NO");
  }

  if (!common.json->empty()) {
    // Atomic (temp + rename): an interrupted run cannot leave a truncated
    // report where the regression gate expects a baseline.
    ppk::io::AtomicFileWriter file(*common.json);
    ppk::io::JsonWriter json(file.stream());
    json.begin_object();
    json.member("schema", "ppk-bench-topology-v1");
    json.member("bench", "topology_sensitivity");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    // True when SIGINT cut the run short: only the completed sweep points
    // are present, the wedged/ER rows are zeroed, and gates must not treat
    // the report as a baseline.
    json.member("interrupted", ppk::bench::interrupted());
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.member("reps", std::max(1, *reps));
    json.member("sweep_n", static_cast<std::uint64_t>(n));
    json.member("sweep_budget", budget);
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    json.key("sweep");
    json.begin_array();
    for (const SweepRow& row : sweep) {
      json.begin_object();
      json.member("k", row.k);
      json.member("topology", row.topology);
      json.member("engine", row.engine);
      json.member("avg_degree", row.avg_degree);
      json.member("stabilized_rate", row.stabilized_rate);
      json.member("stalled_rate", row.stalled_rate);
      json.member("mean_interactions_stabilized",
                  row.mean_interactions_when_stabilized);
      json.member("trials", static_cast<std::int64_t>(row.trials));
      json.end_object();
    }
    json.end_array();
    json.key("wedged_ring_speedup");
    json.begin_object();
    json.member("n", static_cast<std::uint64_t>(speedup.n));
    json.member("k", speedup.k);
    json.member("graph_budget", speedup.graph_budget);
    json.member("graph_seconds", speedup.graph_seconds);
    json.member("live_seconds", speedup.live_seconds);
    json.member("live_trials_timed", speedup.live_trials);
    json.member("speedup", speedup.speedup);
    json.member("live_detected_wedge", speedup.live_detected_wedge);
    json.member("calibration_rate", speedup.calibration_rate);
    json.member("graph_rep_spread", speedup.graph_rep_spread);
    json.member("live_rep_spread", speedup.live_rep_spread);
    json.end_object();
    json.key("er_generation");
    json.begin_object();
    json.member("n", static_cast<std::uint64_t>(er.n));
    json.member("p", er.p);
    json.member("seconds", er.seconds);
    json.member("edges", er.edges);
    json.member("connected", er.connected);
    json.member("calibration_rate", er.calibration_rate);
    json.member("rep_spread", er.rep_spread);
    json.end_object();
    json.end_object();
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", common.json->c_str());
  }
  if (ppk::bench::interrupted()) {
    std::printf("\ninterrupted: %zu sweep point(s) completed before SIGINT\n",
                sweep.size());
    return 130;
  }
  return 0;
}
