// Extension experiment: how sensitive is the protocol to the complete-
// interaction-graph assumption?
//
// The paper's reachability lemmas (2-5) let *any* two agents interact.  On
// restricted graphs that argument breaks: a builder (m state) can be
// walled in by committed neighbours with no free agent adjacent, and the
// execution stalls in a non-stable configuration forever.  This bench
// quantifies the effect: stabilization rate and time on the complete
// graph, Erdos-Renyi graphs of shrinking density, the star, and the ring.

#include <cmath>
#include <optional>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/graph_simulator.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"

namespace {

struct TopologyResult {
  int stabilized = 0;
  double mean_interactions_when_stabilized = 0.0;
  double average_degree = 0.0;
};

TopologyResult run_topology(
    const ppk::core::KPartitionProtocol& protocol,
    const ppk::pp::TransitionTable& table, std::uint32_t n,
    const std::function<ppk::pp::InteractionGraph(std::uint64_t)>& make_graph,
    int trials, std::uint64_t master_seed, std::uint64_t budget) {
  TopologyResult result;
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed =
        ppk::derive_stream_seed(master_seed, static_cast<std::uint64_t>(trial));
    auto graph = make_graph(seed);
    result.average_degree = graph.average_degree();
    ppk::pp::GraphSimulator sim(
        table, std::move(graph),
        ppk::pp::Population(n, protocol.num_states(),
                            protocol.initial_state()),
        seed ^ 0xD1CEULL);
    auto oracle =
        ppk::core::stable_pattern_oracle(protocol, n);
    const auto r = sim.run(*oracle, budget);
    if (r.stabilized) {
      ++result.stabilized;
      total += static_cast<double>(r.interactions);
    }
  }
  result.mean_interactions_when_stabilized =
      result.stabilized > 0 ? total / result.stabilized : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("topology_sensitivity",
               "Stabilization rate and time by interaction-graph topology.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/30);
  auto n_flag = cli.flag<int>("n", 24, "population size");
  auto budget_flag = cli.flag<long long>("budget", 5'000'000,
                                         "interaction budget per trial");
  cli.parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(*n_flag);
  const int trials = *common.paper ? 100 : *common.trials;
  const auto budget = static_cast<std::uint64_t>(*budget_flag);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  ppk::bench::print_header(
      "Topology sensitivity",
      "the complete-graph assumption, stress-tested (k-partition)");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "k", "topology", "avg_degree",
                                 "stabilized_rate", "mean_interactions",
                                 "trials"});
  }

  using Graph = ppk::pp::InteractionGraph;
  struct Topology {
    const char* name;
    std::function<Graph(std::uint64_t)> make;
  };
  const double logn_over_n =
      2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
  const std::vector<Topology> topologies = {
      {"complete", [&](std::uint64_t) { return Graph::complete(n); }},
      {"er(p=0.5)",
       [&](std::uint64_t s) { return Graph::erdos_renyi(n, 0.5, s); }},
      {"er(p=0.2)",
       [&](std::uint64_t s) { return Graph::erdos_renyi(n, 0.2, s); }},
      {"er(p=2ln(n)/n)",
       [&](std::uint64_t s) { return Graph::erdos_renyi(n, logn_over_n, s); }},
      {"star", [&](std::uint64_t) { return Graph::star(n); }},
      {"ring", [&](std::uint64_t) { return Graph::ring(n); }},
  };

  for (ppk::pp::GroupId k : {ppk::pp::GroupId{3}, ppk::pp::GroupId{4}}) {
    const ppk::core::KPartitionProtocol protocol(k);
    const ppk::pp::TransitionTable table(protocol);
    std::printf("--- k = %d, n = %u ---\n", int{k}, n);
    ppk::analysis::Table out({"topology", "avg degree", "stabilized rate",
                              "mean interactions (stabilized runs)"});
    for (const Topology& topology : topologies) {
      const TopologyResult r = run_topology(protocol, table, n, topology.make,
                                            trials, seed, budget);
      out.row(topology.name, r.average_degree,
              static_cast<double>(r.stabilized) / trials,
              r.mean_interactions_when_stabilized);
      if (csv) {
        csv->row(int{k}, topology.name, r.average_degree,
                 static_cast<double>(r.stabilized) / trials,
                 r.mean_interactions_when_stabilized, trials);
      }
    }
    out.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: the complete graph stabilizes in 100%% of runs (Theorem 1).\n"
      "Everything sparser wedges in most runs -- builders get walled in by\n"
      "committed neighbours, which the complete graph makes impossible.  The\n"
      "paper's complete-interaction-graph assumption is load-bearing, not a\n"
      "modelling convenience.  (Stabilized-run means are survivorship-biased\n"
      "low on sparse graphs: only lucky executions finish.)\n");
  return 0;
}
