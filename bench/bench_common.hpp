// Shared plumbing for the figure-regeneration benches: consistent CLI
// flags, console table + CSV output, and the sweep loop.

#pragma once

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "io/csv.hpp"
#include "util/cli.hpp"

namespace ppk::bench {

/// Flags every figure bench shares.  The paper uses 100 trials per point;
/// benches default lower so a full `for b in bench/*; do $b; done` sweep
/// stays interactive, and --paper restores the publication settings.
struct CommonFlags {
  std::shared_ptr<int> trials;
  std::shared_ptr<long long> seed;
  std::shared_ptr<bool> paper;
  std::shared_ptr<std::string> csv;
  std::shared_ptr<int> threads;

  explicit CommonFlags(Cli& cli, int default_trials = 30)
      : trials(cli.flag<int>("trials", default_trials, "trials per point")),
        seed(cli.flag<long long>("seed", 0x5EED, "master RNG seed")),
        paper(cli.flag<bool>("paper", false,
                             "use the paper's settings (100 trials, full "
                             "sweeps)")),
        csv(cli.flag<std::string>("csv", "",
                                  "also write results to this CSV path")),
        threads(cli.flag<int>("threads", 1, "worker threads for trials")) {}

  [[nodiscard]] analysis::ExperimentOptions experiment_options() const {
    analysis::ExperimentOptions options;
    options.trials = static_cast<std::uint32_t>(*paper ? 100 : *trials);
    options.master_seed = static_cast<std::uint64_t>(*seed);
    options.threads = static_cast<std::size_t>(*threads);
    return options;
  }
};

inline void print_header(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("(protocol: Algorithm 1, uniform-random scheduler; interaction"
              " counts include null interactions, as in the paper)\n\n");
}

}  // namespace ppk::bench
