// Shared plumbing for the figure-regeneration benches: consistent CLI
// flags, console table + CSV output, and the sweep loop.

#pragma once

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "io/atomic_file.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace ppk::bench {

/// Flags every figure bench shares.  The paper uses 100 trials per point;
/// benches default lower so a full `for b in bench/*; do $b; done` sweep
/// stays interactive, and --paper restores the publication settings.
struct CommonFlags {
  std::shared_ptr<int> trials;
  std::shared_ptr<long long> seed;
  std::shared_ptr<bool> paper;
  std::shared_ptr<std::string> csv;
  std::shared_ptr<std::string> json;
  std::shared_ptr<std::string> metrics_out;
  std::shared_ptr<int> threads;

  /// Aggregate metrics across every point the bench sweeps, merged from
  /// the per-trial registries (see pp::MonteCarloOptions::metrics); filled
  /// only when --metrics-out is set, written by write_metrics().
  mutable obs::MetricsRegistry metrics;

  explicit CommonFlags(Cli& cli, int default_trials = 30)
      : trials(cli.flag<int>("trials", default_trials, "trials per point")),
        seed(cli.flag<long long>("seed", 0x5EED, "master RNG seed")),
        paper(cli.flag<bool>("paper", false,
                             "use the paper's settings (100 trials, full "
                             "sweeps)")),
        csv(cli.flag<std::string>("csv", "",
                                  "also write results to this CSV path")),
        json(cli.flag<std::string>("json", "",
                                   "also write results to this JSON path "
                                   "(machine-readable report)")),
        metrics_out(cli.flag<std::string>(
            "metrics-out", "",
            "write aggregate observability metrics (counters/histograms "
            "merged over all trials) to this JSON path")),
        threads(cli.flag<int>("threads", 1, "worker threads for trials")) {}

  [[nodiscard]] analysis::ExperimentOptions experiment_options() const {
    analysis::ExperimentOptions options;
    options.trials = static_cast<std::uint32_t>(*paper ? 100 : *trials);
    options.master_seed = static_cast<std::uint64_t>(*seed);
    options.threads = static_cast<std::size_t>(*threads);
    if (!metrics_out->empty()) options.metrics = &metrics;
    return options;
  }

  /// Writes the aggregated metrics bundle to --metrics-out (no-op when the
  /// flag is unset).  Call once, after the sweep.  The write is atomic
  /// (temp + rename): an interrupted bench leaves the previous report, if
  /// any, intact instead of a truncated one.
  void write_metrics(const char* bench_name) const {
    if (metrics_out->empty()) return;
    io::AtomicFileWriter out(*metrics_out);
    io::JsonWriter writer(out.stream());
    writer.begin_object();
    writer.member("schema", "ppk-metrics-v1");
    writer.member("bench", bench_name);
    writer.key("metrics");
    metrics.write_json(writer);
    writer.end_object();
    out.stream() << '\n';
    std::string error;
    if (!out.commit(&error)) {
      std::fprintf(stderr, "cannot write metrics: %s\n", error.c_str());
      return;
    }
    std::printf("metrics written to %s\n", metrics_out->c_str());
  }
};

/// Writes the machine-metadata object benches embed in JSON reports, so a
/// committed baseline records where its numbers came from.
inline void write_machine_metadata(io::JsonWriter& json) {
  json.begin_object();
  json.member("hardware_threads",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
#if defined(__VERSION__)
  json.member("compiler", __VERSION__);
#else
  json.member("compiler", "unknown");
#endif
#if defined(NDEBUG)
  json.member("assertions_disabled", true);
#else
  json.member("assertions_disabled", false);
#endif
#if defined(__unix__) || defined(__APPLE__)
  utsname names{};
  if (uname(&names) == 0) {
    json.member("os", std::string(names.sysname) + " " + names.release);
    json.member("arch", names.machine);
  }
#endif
  json.end_object();
}

/// Latched by the SIGINT handler installed below.  Sweep loops poll
/// interrupted() between points so Ctrl-C finishes the in-flight
/// measurement, flushes the (atomic) report with whatever completed, and
/// exits cleanly instead of dying mid-write.
inline std::atomic<bool>& sigint_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Installs the latching SIGINT handler.  Call once at the top of main().
inline void install_sigint_handler() {
  sigint_flag().store(false);
  std::signal(SIGINT, [](int) { sigint_flag().store(true); });
}

/// True once SIGINT has been received.
[[nodiscard]] inline bool interrupted() { return sigint_flag().load(); }

inline void print_header(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("(protocol: Algorithm 1, uniform-random scheduler; interaction"
              " counts include null interactions, as in the paper)\n\n");
}

}  // namespace ppk::bench
