// Engine throughput at scale: interactions per wall-second for every
// engine over an {n, k} grid, emitted as the machine-readable report
// (BENCH_ENGINES.json) the CI regression gate checks.
//
// Metric.  Each (engine, n, k) point runs the paper's protocol from the
// all-initial configuration toward the stable pattern, under a wall-clock
// cap, and reports interactions advanced per second.  A trajectory that
// stabilizes in under the minimum measurement window is repeated (same
// seed, bit-identical work) until the window fills, so short rows are
// timed over hundreds of milliseconds rather than single-digit ones.
// The aggregating engines (jump, batch) typically reach stabilization
// inside the cap -- their rate is an honest full-trajectory average,
// including the null-dominated endgame they skip through.  The pairwise
// engines (agent, count) cannot finish Theta(n^2) interactions at large n
// inside any reasonable cap; they are clock-capped mid-trajectory, which
// is still an honest rate for THEM because their per-interaction cost does
// not depend on the phase.  Comparing the two is exactly the comparison a
// user cares about: wall time per simulated interaction, over the
// trajectory each engine would actually execute.
//
// Calibration.  Shared machines drift in effective CPU frequency under
// sustained load (tens of percent, on timescales from milliseconds to
// minutes), so raw rates from two benchmarking sessions are not comparable
// at the percent level no matter how many reps are taken.  Each measurement
// therefore interleaves short slices of a fixed xoshiro256** kernel with
// the simulation chunks; the slices' aggregate rate samples the machine's
// effective frequency over the SAME window as the measurement itself, and
// the report carries it as calibration_rate.  The regression gate divides
// rates by it, cancelling the frequency term.  Slice time is excluded from
// the reported seconds.
//
// The JSON report carries machine metadata and (via --git-rev, filled in
// by scripts/run_benchmarks.sh) the source revision, so committed baselines
// are auditable.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "obs/sink.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Measurement {
  double seconds = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  bool stabilized = false;
  std::uint64_t calibration_draws = 0;
  double calibration_seconds = 0.0;

  double calibration_rate() const {
    return calibration_seconds > 0.0
               ? static_cast<double>(calibration_draws) / calibration_seconds
               : 0.0;
  }
};

volatile std::uint64_t g_calibration_sink = 0;

/// One slice of the fixed ALU-bound calibration kernel; returns its
/// duration.  Aggregated slice rate tracks the machine's momentary
/// effective frequency, which is the only thing that separates two runs
/// of the same (seeded, deterministic) row.
double calibration_slice(std::uint64_t* draws) {
  constexpr std::uint64_t kSliceDraws = 1ULL << 21;
  ppk::Xoshiro256 rng(0x9E3779B97F4A7C15ULL);
  const ppk::Stopwatch clock;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < kSliceDraws; ++i) acc += rng();
  g_calibration_sink = acc;
  *draws += kSliceDraws;
  return clock.seconds();
}

/// Chunked run under a wall-clock cap: run() once, then resume() so the
/// oracle's progress and the interaction stream are those of one unchunked
/// trajectory (the engines' budgets are exact, so chunk accounting is too).
template <typename Sim>
Measurement measure(Sim& sim, ppk::pp::StabilityOracle& oracle,
                    double wall_cap_seconds) {
  constexpr std::uint64_t kChunk = 1ULL << 22;
  constexpr double kCalibrateEvery = 0.02;  // seconds of measured sim time
  Measurement m;
  const ppk::Stopwatch total;  // caps sim + calibration together
  double measured = 0.0;
  double since_calibration = 0.0;
  bool first = true;
  while (true) {
    const ppk::Stopwatch chunk_clock;
    const ppk::pp::SimResult r =
        first ? sim.run(oracle, kChunk) : sim.resume(oracle, kChunk);
    const double chunk_seconds = chunk_clock.seconds();
    measured += chunk_seconds;
    since_calibration += chunk_seconds;
    first = false;
    m.interactions += r.interactions;
    m.effective += r.effective;
    bool done = false;
    if (r.stabilized) {
      m.stabilized = true;
      done = true;
    } else if (r.interactions < kChunk) {
      done = true;  // silent / stalled
    } else if (total.seconds() >= wall_cap_seconds) {
      done = true;
    }
    // Sample the machine's momentary speed inside the measurement window
    // itself (frequency fluctuates too fast for a before/after probe).
    if (since_calibration >= kCalibrateEvery || done) {
      m.calibration_seconds += calibration_slice(&m.calibration_draws);
      since_calibration = 0.0;
    }
    if (done) break;
  }
  m.seconds = measured;
  return m;
}

/// Trajectories that stabilize in milliseconds are too short to time at
/// the percent level, so repeat the identical (same-seed) trajectory until
/// the measured window reaches kMinMeasureSeconds and report the totals:
/// per-trajectory noise and calibration-slice noise both average out over
/// the full window.  Clock-capped rows already fill the window and run
/// once.
template <typename Sim, typename MakeSim>
Measurement measure_repeated(MakeSim make_sim,
                             const ppk::core::KPartitionProtocol& protocol,
                             std::uint32_t n, double wall_cap_seconds) {
  constexpr double kMinMeasureSeconds = 0.3;
  Measurement total;
  while (true) {
    const auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    Sim sim = make_sim();
    const Measurement one = measure(sim, *oracle, wall_cap_seconds);
    total.seconds += one.seconds;
    total.interactions += one.interactions;
    total.effective += one.effective;
    total.stabilized = one.stabilized;
    total.calibration_draws += one.calibration_draws;
    total.calibration_seconds += one.calibration_seconds;
    if (!one.stabilized) break;  // capped or stalled: window already full
    if (total.seconds + total.calibration_seconds >=
        std::min(wall_cap_seconds, kMinMeasureSeconds)) {
      break;
    }
  }
  return total;
}

Measurement measure_engine(ppk::pp::Engine engine,
                           const ppk::pp::TransitionTable& table,
                           const ppk::core::KPartitionProtocol& protocol,
                           std::uint32_t n, std::uint64_t seed,
                           double wall_cap_seconds) {
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  switch (engine) {
    case ppk::pp::Engine::kAgentArray:
      return measure_repeated<ppk::pp::AgentSimulator>(
          [&] {
            return ppk::pp::AgentSimulator(table, ppk::pp::Population(initial),
                                           seed);
          },
          protocol, n, wall_cap_seconds);
    case ppk::pp::Engine::kCountVector:
      return measure_repeated<ppk::pp::CountSimulator>(
          [&] { return ppk::pp::CountSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
    case ppk::pp::Engine::kJump:
      return measure_repeated<ppk::pp::JumpSimulator>(
          [&] { return ppk::pp::JumpSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
    default:
      return measure_repeated<ppk::pp::BatchSimulator>(
          [&] { return ppk::pp::BatchSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
  }
}

const char* engine_name(ppk::pp::Engine e) {
  switch (e) {
    case ppk::pp::Engine::kAgentArray: return "agent";
    case ppk::pp::Engine::kCountVector: return "count";
    case ppk::pp::Engine::kJump: return "jump";
    default: return "batch";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("batch_throughput",
               "Interactions/second per engine over an {n, k} grid.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/1);
  auto smoke = cli.flag<bool>(
      "smoke", false, "tiny grid + short caps (CI regression gate)");
  auto seconds = cli.flag<double>(
      "seconds", 0.0, "wall-clock cap per point (0 = 2.0 full, 0.5 smoke)");
  auto reps = cli.flag<int>(
      "reps", 1,
      "measurements per point; the best rate is reported (suppresses timer "
      "noise for tight gates like the observability-overhead check)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);
  ppk::bench::install_sigint_handler();

  const double cap = *seconds > 0.0 ? *seconds : (*smoke ? 0.5 : 2.0);

  ppk::bench::print_header("Engine throughput",
                           "interactions per wall-second, per engine");

  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  std::vector<Case> cases;
  if (*smoke) {
    cases = {Case{3, 10'000}, Case{3, 100'000}};
  } else {
    cases = {Case{3, 10'000},  Case{8, 10'000}, Case{3, 100'000},
             Case{8, 100'000}, Case{3, 1'000'000}};
  }
  const std::vector<ppk::pp::Engine> engines = {
      ppk::pp::Engine::kAgentArray, ppk::pp::Engine::kCountVector,
      ppk::pp::Engine::kJump, ppk::pp::Engine::kBatch};

  ppk::analysis::Table table({"k", "n", "engine", "interactions", "seconds",
                              "stabilized", "M interactions/s"});

  struct Row {
    Case c;
    const char* engine;
    Measurement m;
    double rate;
    double calibration;
    double rep_spread;
  };
  std::vector<Row> rows;
  for (const Case& c : cases) {
    // Ctrl-C: the in-flight point finishes, the sweep stops here, and the
    // report below is still written (flagged interrupted) atomically.
    if (ppk::bench::interrupted()) break;
    const ppk::core::KPartitionProtocol protocol(c.k);
    const ppk::pp::TransitionTable transitions(protocol);
    for (const auto engine : engines) {
      if (ppk::bench::interrupted()) break;
      const auto seed = static_cast<std::uint64_t>(*common.seed);
      // Same seed every rep: the work is identical, so the best rate is a
      // pure timer-noise floor, not a different trajectory.  Interference
      // only ever slows a kernel down, so the simulation rate and the
      // calibration rate are floored INDEPENDENTLY across reps -- keeping
      // the pair from a single rep would let a disturbed calibration slice
      // inflate the calibrated ratio.
      Measurement m;
      double rate = 0.0;
      double calibration = 0.0;
      double norm_lo = 0.0;
      double norm_hi = 0.0;
      for (int rep = 0; rep < std::max(1, *reps); ++rep) {
        const Measurement candidate =
            measure_engine(engine, transitions, protocol, c.n, seed, cap);
        const double candidate_rate =
            candidate.seconds > 0
                ? static_cast<double>(candidate.interactions) /
                      candidate.seconds
                : 0.0;
        if (rep == 0 || candidate_rate > rate) {
          m = candidate;
          rate = candidate_rate;
        }
        calibration = std::max(calibration, candidate.calibration_rate());
        const double normalized =
            candidate_rate / candidate.calibration_rate();
        norm_lo = rep == 0 ? normalized : std::min(norm_lo, normalized);
        norm_hi = rep == 0 ? normalized : std::max(norm_hi, normalized);
      }
      // The spread of per-rep calibrated rates is the row's own noise
      // estimate; the regression gate widens its tolerance by it, so the
      // gate is tight exactly when the machine was quiet enough to earn it.
      const double rep_spread = norm_hi > 0.0 ? 1.0 - norm_lo / norm_hi : 0.0;
      rows.push_back(
          {c, engine_name(engine), m, rate, calibration, rep_spread});
      table.row(int{c.k}, c.n, engine_name(engine), m.interactions, m.seconds,
                m.stabilized ? "yes" : "no", rate / 1e6);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: agent/count pay per drawn pair, so they are clock-capped\n"
      "mid-trajectory at large n; jump skips null runs; batch additionally\n"
      "aggregates the dense phase in collision-free groups.  Rates are\n"
      "honest per-engine averages over the trajectory each one executes.\n");

  if (!common.json->empty()) {
    // Atomic (temp + rename): an interrupted run cannot leave a truncated
    // report where the regression gate expects a baseline.
    ppk::io::AtomicFileWriter file(*common.json);
    ppk::io::JsonWriter json(file.stream());
    json.begin_object();
    json.member("schema", "ppk-bench-engines-v1");
    json.member("bench", "batch_throughput");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    // True when SIGINT cut the sweep short: the results array only covers
    // the points that completed, and gates must not treat it as a baseline.
    json.member("interrupted", ppk::bench::interrupted());
    json.member("wall_cap_seconds", cap);
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.member("reps", std::max(1, *reps));
    // Whether the observability hooks were compiled into the engines for
    // this run (no sink is ever attached here); the regression gate uses
    // this to decide when the <= 2% overhead check applies.
    json.key("observability");
    json.begin_object();
    json.member("compiled", PPK_OBS_ENABLED != 0);
    json.member("sink_attached", false);
    json.end_object();
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    json.key("results");
    json.begin_array();
    for (const Row& r : rows) {
      json.begin_object();
      json.member("engine", r.engine);
      json.member("k", int{r.c.k});
      json.member("n", static_cast<std::uint64_t>(r.c.n));
      json.member("interactions", r.m.interactions);
      json.member("effective", r.m.effective);
      json.member("seconds", r.m.seconds);
      json.member("stabilized", r.m.stabilized);
      json.member("interactions_per_second", r.rate);
      // Best aggregate rate of the interleaved calibration slices across
      // reps; comparisons divide by it to cancel machine frequency drift.
      json.member("calibration_rate", r.calibration);
      // Fractional spread of per-rep calibrated rates: the measurement's
      // own uncertainty; the gate adds it to its tolerance.
      json.member("rep_spread", r.rep_spread);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", common.json->c_str());
  }
  if (ppk::bench::interrupted()) {
    std::printf("\ninterrupted: %zu point(s) completed before SIGINT\n",
                rows.size());
    return 130;
  }
  return 0;
}
