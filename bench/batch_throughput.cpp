// Engine throughput at scale: interactions per wall-second for every
// engine over an {n, k} grid, emitted as the machine-readable report
// (BENCH_ENGINES.json) the CI regression gate checks.
//
// Metric.  Each (engine, n, k) point runs ONE trajectory of the paper's
// protocol from the all-initial configuration toward the stable pattern,
// under a wall-clock cap, and reports interactions advanced per second.
// The aggregating engines (jump, batch) typically reach stabilization
// inside the cap -- their rate is an honest full-trajectory average,
// including the null-dominated endgame they skip through.  The pairwise
// engines (agent, count) cannot finish Theta(n^2) interactions at large n
// inside any reasonable cap; they are clock-capped mid-trajectory, which
// is still an honest rate for THEM because their per-interaction cost does
// not depend on the phase.  Comparing the two is exactly the comparison a
// user cares about: wall time per simulated interaction, over the
// trajectory each engine would actually execute.
//
// The JSON report carries machine metadata and (via --git-rev, filled in
// by scripts/run_benchmarks.sh) the source revision, so committed baselines
// are auditable.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Measurement {
  double seconds = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  bool stabilized = false;
};

/// Chunked run under a wall-clock cap: run() once, then resume() so the
/// oracle's progress and the interaction stream are those of one unchunked
/// trajectory (the engines' budgets are exact, so chunk accounting is too).
template <typename Sim>
Measurement measure(Sim& sim, ppk::pp::StabilityOracle& oracle,
                    double wall_cap_seconds) {
  constexpr std::uint64_t kChunk = 1ULL << 22;
  Measurement m;
  const ppk::Stopwatch clock;
  bool first = true;
  while (true) {
    const ppk::pp::SimResult r =
        first ? sim.run(oracle, kChunk) : sim.resume(oracle, kChunk);
    first = false;
    m.interactions += r.interactions;
    m.effective += r.effective;
    if (r.stabilized) {
      m.stabilized = true;
      break;
    }
    if (r.interactions < kChunk) break;  // silent / stalled
    if (clock.seconds() >= wall_cap_seconds) break;
  }
  m.seconds = clock.seconds();
  return m;
}

Measurement measure_engine(ppk::pp::Engine engine,
                           const ppk::pp::TransitionTable& table,
                           const ppk::core::KPartitionProtocol& protocol,
                           std::uint32_t n, std::uint64_t seed,
                           double wall_cap_seconds) {
  const auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  switch (engine) {
    case ppk::pp::Engine::kAgentArray: {
      ppk::pp::AgentSimulator sim(table, ppk::pp::Population(initial), seed);
      return measure(sim, *oracle, wall_cap_seconds);
    }
    case ppk::pp::Engine::kCountVector: {
      ppk::pp::CountSimulator sim(table, initial, seed);
      return measure(sim, *oracle, wall_cap_seconds);
    }
    case ppk::pp::Engine::kJump: {
      ppk::pp::JumpSimulator sim(table, initial, seed);
      return measure(sim, *oracle, wall_cap_seconds);
    }
    default: {
      ppk::pp::BatchSimulator sim(table, initial, seed);
      return measure(sim, *oracle, wall_cap_seconds);
    }
  }
}

const char* engine_name(ppk::pp::Engine e) {
  switch (e) {
    case ppk::pp::Engine::kAgentArray: return "agent";
    case ppk::pp::Engine::kCountVector: return "count";
    case ppk::pp::Engine::kJump: return "jump";
    default: return "batch";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("batch_throughput",
               "Interactions/second per engine over an {n, k} grid.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/1);
  auto smoke = cli.flag<bool>(
      "smoke", false, "tiny grid + short caps (CI regression gate)");
  auto seconds = cli.flag<double>(
      "seconds", 0.0, "wall-clock cap per point (0 = 2.0 full, 0.5 smoke)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);

  const double cap = *seconds > 0.0 ? *seconds : (*smoke ? 0.5 : 2.0);

  ppk::bench::print_header("Engine throughput",
                           "interactions per wall-second, per engine");

  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  std::vector<Case> cases;
  if (*smoke) {
    cases = {Case{3, 10'000}, Case{3, 100'000}};
  } else {
    cases = {Case{3, 10'000},  Case{8, 10'000}, Case{3, 100'000},
             Case{8, 100'000}, Case{3, 1'000'000}};
  }
  const std::vector<ppk::pp::Engine> engines = {
      ppk::pp::Engine::kAgentArray, ppk::pp::Engine::kCountVector,
      ppk::pp::Engine::kJump, ppk::pp::Engine::kBatch};

  ppk::analysis::Table table({"k", "n", "engine", "interactions", "seconds",
                              "stabilized", "M interactions/s"});

  struct Row {
    Case c;
    const char* engine;
    Measurement m;
    double rate;
  };
  std::vector<Row> rows;
  for (const Case& c : cases) {
    const ppk::core::KPartitionProtocol protocol(c.k);
    const ppk::pp::TransitionTable transitions(protocol);
    for (const auto engine : engines) {
      const auto seed = static_cast<std::uint64_t>(*common.seed);
      const Measurement m =
          measure_engine(engine, transitions, protocol, c.n, seed, cap);
      const double rate =
          m.seconds > 0 ? static_cast<double>(m.interactions) / m.seconds
                        : 0.0;
      rows.push_back({c, engine_name(engine), m, rate});
      table.row(int{c.k}, c.n, engine_name(engine), m.interactions, m.seconds,
                m.stabilized ? "yes" : "no", rate / 1e6);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: agent/count pay per drawn pair, so they are clock-capped\n"
      "mid-trajectory at large n; jump skips null runs; batch additionally\n"
      "aggregates the dense phase in collision-free groups.  Rates are\n"
      "honest per-engine averages over the trajectory each one executes.\n");

  if (!common.json->empty()) {
    std::ofstream file(*common.json);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", common.json->c_str());
      return 1;
    }
    ppk::io::JsonWriter json(file);
    json.begin_object();
    json.member("schema", "ppk-bench-engines-v1");
    json.member("bench", "batch_throughput");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    json.member("wall_cap_seconds", cap);
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    json.key("results");
    json.begin_array();
    for (const Row& r : rows) {
      json.begin_object();
      json.member("engine", r.engine);
      json.member("k", int{r.c.k});
      json.member("n", static_cast<std::uint64_t>(r.c.n));
      json.member("interactions", r.m.interactions);
      json.member("effective", r.m.effective);
      json.member("seconds", r.m.seconds);
      json.member("stabilized", r.m.stabilized);
      json.member("interactions_per_second", r.rate);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("\nwrote %s\n", common.json->c_str());
  }
  return 0;
}
