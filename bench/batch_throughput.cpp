// Engine throughput at scale: interactions per wall-second for every
// engine over an {n, k} grid, emitted as the machine-readable report
// (BENCH_ENGINES.json) the CI regression gate checks.
//
// Metric.  Each (engine, n, k) point runs the paper's protocol from the
// all-initial configuration toward the stable pattern, under a wall-clock
// cap, and reports interactions advanced per second.  A trajectory that
// stabilizes in under the minimum measurement window is repeated (same
// seed, bit-identical work) until the window fills, so short rows are
// timed over hundreds of milliseconds rather than single-digit ones.
// The aggregating engines (jump, batch) typically reach stabilization
// inside the cap -- their rate is an honest full-trajectory average,
// including the null-dominated endgame they skip through.  The pairwise
// engines (agent, count) cannot finish Theta(n^2) interactions at large n
// inside any reasonable cap; they are clock-capped mid-trajectory, which
// is still an honest rate for THEM because their per-interaction cost does
// not depend on the phase.  Comparing the two is exactly the comparison a
// user cares about: wall time per simulated interaction, over the
// trajectory each engine would actually execute.
//
// Calibration.  Shared machines drift in effective CPU frequency under
// sustained load (tens of percent, on timescales from milliseconds to
// minutes), so raw rates from two benchmarking sessions are not comparable
// at the percent level no matter how many reps are taken.  Each measurement
// therefore interleaves short slices of a fixed xoshiro256** kernel with
// the simulation chunks; the slices' aggregate rate samples the machine's
// effective frequency over the SAME window as the measurement itself, and
// the report carries it as calibration_rate.  The regression gate divides
// rates by it, cancelling the frequency term.  Slice time is excluded from
// the reported seconds.
//
// The JSON report carries machine metadata and (via --git-rev, filled in
// by scripts/run_benchmarks.sh) the source revision, so committed baselines
// are auditable.
//
// Beyond the grid, the v2 report adds two blocks for the sharded engine:
// "sampler_setup" (cold shared log-factorial build vs warm engine
// construction -- a hard in-bench assertion that per-engine sampler setup
// is amortized out) and "sharded_scale" (one deep exact-budget trial at
// n = 10^8 -- 4x10^6 in smoke mode -- batch baseline vs sharded at worker
// counts 1/2/4/8, each row carrying a verdict fingerprint that must match
// across reps and thread counts; the bench exits nonzero if not).

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/kpartition.hpp"
#include "obs/sink.hpp"
#include "pp/agent_simulator.hpp"
#include "pp/batch_sharded_simulator.hpp"
#include "pp/batch_simulator.hpp"
#include "pp/count_simulator.hpp"
#include "pp/jump_simulator.hpp"
#include "pp/monte_carlo.hpp"
#include "pp/transition_table.hpp"
#include "util/log_fact.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Measurement {
  double seconds = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t effective = 0;
  bool stabilized = false;
  std::uint64_t calibration_draws = 0;
  double calibration_seconds = 0.0;

  double calibration_rate() const {
    return calibration_seconds > 0.0
               ? static_cast<double>(calibration_draws) / calibration_seconds
               : 0.0;
  }
};

volatile std::uint64_t g_calibration_sink = 0;

/// One slice of the fixed ALU-bound calibration kernel; returns its
/// duration.  Aggregated slice rate tracks the machine's momentary
/// effective frequency, which is the only thing that separates two runs
/// of the same (seeded, deterministic) row.
double calibration_slice(std::uint64_t* draws) {
  constexpr std::uint64_t kSliceDraws = 1ULL << 21;
  ppk::Xoshiro256 rng(0x9E3779B97F4A7C15ULL);
  const ppk::Stopwatch clock;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < kSliceDraws; ++i) acc += rng();
  g_calibration_sink = acc;
  *draws += kSliceDraws;
  return clock.seconds();
}

/// Chunked run under a wall-clock cap: run() once, then resume() so the
/// oracle's progress and the interaction stream are those of one unchunked
/// trajectory (the engines' budgets are exact, so chunk accounting is too).
template <typename Sim>
Measurement measure(Sim& sim, ppk::pp::StabilityOracle& oracle,
                    double wall_cap_seconds) {
  constexpr std::uint64_t kChunk = 1ULL << 22;
  constexpr double kCalibrateEvery = 0.02;  // seconds of measured sim time
  Measurement m;
  const ppk::Stopwatch total;  // caps sim + calibration together
  double measured = 0.0;
  double since_calibration = 0.0;
  bool first = true;
  while (true) {
    const ppk::Stopwatch chunk_clock;
    const ppk::pp::SimResult r =
        first ? sim.run(oracle, kChunk) : sim.resume(oracle, kChunk);
    const double chunk_seconds = chunk_clock.seconds();
    measured += chunk_seconds;
    since_calibration += chunk_seconds;
    first = false;
    m.interactions += r.interactions;
    m.effective += r.effective;
    bool done = false;
    if (r.stabilized) {
      m.stabilized = true;
      done = true;
    } else if (r.interactions < kChunk) {
      done = true;  // silent / stalled
    } else if (total.seconds() >= wall_cap_seconds) {
      done = true;
    }
    // Sample the machine's momentary speed inside the measurement window
    // itself (frequency fluctuates too fast for a before/after probe).
    if (since_calibration >= kCalibrateEvery || done) {
      m.calibration_seconds += calibration_slice(&m.calibration_draws);
      since_calibration = 0.0;
    }
    if (done) break;
  }
  m.seconds = measured;
  return m;
}

/// Trajectories that stabilize in milliseconds are too short to time at
/// the percent level, so repeat the identical (same-seed) trajectory until
/// the measured window reaches kMinMeasureSeconds and report the totals:
/// per-trajectory noise and calibration-slice noise both average out over
/// the full window.  Clock-capped rows already fill the window and run
/// once.
template <typename Sim, typename MakeSim>
Measurement measure_repeated(MakeSim make_sim,
                             const ppk::core::KPartitionProtocol& protocol,
                             std::uint32_t n, double wall_cap_seconds) {
  constexpr double kMinMeasureSeconds = 0.3;
  Measurement total;
  while (true) {
    const auto oracle = ppk::core::stable_pattern_oracle(protocol, n);
    Sim sim = make_sim();
    const Measurement one = measure(sim, *oracle, wall_cap_seconds);
    total.seconds += one.seconds;
    total.interactions += one.interactions;
    total.effective += one.effective;
    total.stabilized = one.stabilized;
    total.calibration_draws += one.calibration_draws;
    total.calibration_seconds += one.calibration_seconds;
    if (!one.stabilized) break;  // capped or stalled: window already full
    if (total.seconds + total.calibration_seconds >=
        std::min(wall_cap_seconds, kMinMeasureSeconds)) {
      break;
    }
  }
  return total;
}

Measurement measure_engine(ppk::pp::Engine engine,
                           const ppk::pp::TransitionTable& table,
                           const ppk::core::KPartitionProtocol& protocol,
                           std::uint32_t n, std::uint64_t seed,
                           double wall_cap_seconds) {
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  switch (engine) {
    case ppk::pp::Engine::kAgentArray:
      return measure_repeated<ppk::pp::AgentSimulator>(
          [&] {
            return ppk::pp::AgentSimulator(table, ppk::pp::Population(initial),
                                           seed);
          },
          protocol, n, wall_cap_seconds);
    case ppk::pp::Engine::kCountVector:
      return measure_repeated<ppk::pp::CountSimulator>(
          [&] { return ppk::pp::CountSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
    case ppk::pp::Engine::kJump:
      return measure_repeated<ppk::pp::JumpSimulator>(
          [&] { return ppk::pp::JumpSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
    case ppk::pp::Engine::kBatchSharded:
      return measure_repeated<ppk::pp::BatchShardedSimulator>(
          [&] { return ppk::pp::BatchShardedSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
    default:
      return measure_repeated<ppk::pp::BatchSimulator>(
          [&] { return ppk::pp::BatchSimulator(table, initial, seed); },
          protocol, n, wall_cap_seconds);
  }
}

const char* engine_name(ppk::pp::Engine e) {
  switch (e) {
    case ppk::pp::Engine::kAgentArray: return "agent";
    case ppk::pp::Engine::kCountVector: return "count";
    case ppk::pp::Engine::kJump: return "jump";
    case ppk::pp::Engine::kBatchSharded: return "sharded";
    default: return "batch";
  }
}

// ---------------------------------------------------------------------------
// Sampler-setup amortization (the hoisted log-factorial table)

/// FNV-1a over the final configuration and totals: the row's verdict.
/// Trajectories are pure functions of the seed, so two rows of the same
/// (n, k, seed, budget) must fingerprint identically no matter the thread
/// count or SIMD dispatch -- the property the scale gate pins.
std::uint64_t verdict_fingerprint(const ppk::pp::Counts& counts,
                                  std::uint64_t interactions,
                                  std::uint64_t effective) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(interactions);
  mix(effective);
  for (const std::uint32_t c : counts) mix(c);
  return h;
}

struct SamplerSetup {
  double cold_table_seconds = 0.0;  // first shared log-factorial build
  double warm_engine_seconds = 0.0; // per-engine construction, table hot
  double warm_fraction = 0.0;       // warm / cold
};

/// Must run before anything touches the shared table: the first call pays
/// the full lgamma fill (the "cold" cost the singleton exists to amortize),
/// after which engine construction only allocates tiles.  The bench
/// asserts the amortization (warm construction well under the cold build)
/// so a regression that re-derives the table per engine -- the exact cost
/// the hoist removed -- fails loudly rather than just benching slower.
SamplerSetup measure_sampler_setup() {
  SamplerSetup s;
  {
    const ppk::Stopwatch clock;
    const ppk::LogFact cold(ppk::kLogFactTableSize - 1);
    s.cold_table_seconds = clock.seconds();
    g_calibration_sink = static_cast<std::uint64_t>(cold(1000.0));
  }
  const ppk::core::KPartitionProtocol protocol(3);
  const ppk::pp::TransitionTable table(protocol);
  const std::uint32_t n = 2'000'000;
  ppk::pp::Counts initial(protocol.num_states(), 0);
  initial[protocol.initial_state()] = n;
  constexpr int kWarmEngines = 8;
  const ppk::Stopwatch clock;
  for (int i = 0; i < kWarmEngines; ++i) {
    ppk::pp::BatchShardedSimulator sim(table, initial, 1);
    g_calibration_sink = sim.population_size();
  }
  s.warm_engine_seconds = clock.seconds() / kWarmEngines;
  s.warm_fraction = s.cold_table_seconds > 0.0
                        ? s.warm_engine_seconds / s.cold_table_seconds
                        : 1.0;
  return s;
}

// ---------------------------------------------------------------------------
// The sharded-scale block: single trial at n = 10^8

/// Budget-bounded chunked measurement (exact interaction count, so the
/// verdict fingerprint is comparable across rows), with the same
/// interleaved calibration slices as the wall-capped grid rows.
template <typename Sim>
Measurement measure_budget(Sim& sim, ppk::pp::StabilityOracle& oracle,
                           std::uint64_t budget) {
  constexpr std::uint64_t kChunk = 1ULL << 22;
  constexpr double kCalibrateEvery = 0.02;
  Measurement m;
  double since_calibration = 0.0;
  bool first = true;
  std::uint64_t remaining = budget;
  while (remaining > 0) {
    const std::uint64_t grant = std::min<std::uint64_t>(kChunk, remaining);
    const ppk::Stopwatch chunk_clock;
    const ppk::pp::SimResult r =
        first ? sim.run(oracle, grant) : sim.resume(oracle, grant);
    const double chunk_seconds = chunk_clock.seconds();
    m.seconds += chunk_seconds;
    since_calibration += chunk_seconds;
    first = false;
    m.interactions += r.interactions;
    m.effective += r.effective;
    remaining -= r.interactions;
    const bool done = r.stabilized || r.interactions < grant || remaining == 0;
    if (r.stabilized) m.stabilized = true;
    if (since_calibration >= kCalibrateEvery || done) {
      m.calibration_seconds += calibration_slice(&m.calibration_draws);
      since_calibration = 0.0;
    }
    if (done && remaining > 0) break;  // stabilized or silent before budget
  }
  return m;
}

struct ScaleRow {
  const char* engine;
  std::size_t threads;
  Measurement m;
  double rate = 0.0;
  double calibration = 0.0;
  double rep_spread = 0.0;
  std::uint64_t fingerprint = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ppk::Cli cli("batch_throughput",
               "Interactions/second per engine over an {n, k} grid.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/1);
  auto smoke = cli.flag<bool>(
      "smoke", false, "tiny grid + short caps (CI regression gate)");
  auto seconds = cli.flag<double>(
      "seconds", 0.0, "wall-clock cap per point (0 = 2.0 full, 0.5 smoke)");
  auto reps = cli.flag<int>(
      "reps", 1,
      "measurements per point; the best rate is reported (suppresses timer "
      "noise for tight gates like the observability-overhead check)");
  auto git_rev = cli.flag<std::string>(
      "git-rev", "unknown", "source revision recorded in the JSON report");
  cli.parse(argc, argv);
  ppk::bench::install_sigint_handler();

  const double cap = *seconds > 0.0 ? *seconds : (*smoke ? 0.5 : 2.0);

  ppk::bench::print_header("Engine throughput",
                           "interactions per wall-second, per engine");

  // Runs first, while the shared log-factorial table is genuinely cold.
  const SamplerSetup setup = measure_sampler_setup();
  std::printf(
      "sampler setup: cold table %.2f ms, warm engine %.3f ms per "
      "construction (%.2f%% of cold)\n",
      setup.cold_table_seconds * 1e3, setup.warm_engine_seconds * 1e3,
      setup.warm_fraction * 100.0);
  if (setup.warm_fraction >= 0.5) {
    std::fprintf(stderr,
                 "sampler-setup regression: warm engine construction costs "
                 "%.0f%% of the cold log-factorial build -- the shared table "
                 "is not being reused across engines\n",
                 setup.warm_fraction * 100.0);
    return 1;
  }

  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  std::vector<Case> cases;
  if (*smoke) {
    cases = {Case{3, 10'000}, Case{3, 100'000}};
  } else {
    cases = {Case{3, 10'000},  Case{8, 10'000}, Case{3, 100'000},
             Case{8, 100'000}, Case{3, 1'000'000}};
  }
  const std::vector<ppk::pp::Engine> engines = {
      ppk::pp::Engine::kAgentArray, ppk::pp::Engine::kCountVector,
      ppk::pp::Engine::kJump, ppk::pp::Engine::kBatch,
      ppk::pp::Engine::kBatchSharded};

  ppk::analysis::Table table({"k", "n", "engine", "interactions", "seconds",
                              "stabilized", "M interactions/s"});

  struct Row {
    Case c;
    const char* engine;
    Measurement m;
    double rate;
    double calibration;
    double rep_spread;
  };
  std::vector<Row> rows;
  for (const Case& c : cases) {
    // Ctrl-C: the in-flight point finishes, the sweep stops here, and the
    // report below is still written (flagged interrupted) atomically.
    if (ppk::bench::interrupted()) break;
    const ppk::core::KPartitionProtocol protocol(c.k);
    const ppk::pp::TransitionTable transitions(protocol);
    for (const auto engine : engines) {
      if (ppk::bench::interrupted()) break;
      const auto seed = static_cast<std::uint64_t>(*common.seed);
      // Same seed every rep: the work is identical, so the best rate is a
      // pure timer-noise floor, not a different trajectory.  Interference
      // only ever slows a kernel down, so the simulation rate and the
      // calibration rate are floored INDEPENDENTLY across reps -- keeping
      // the pair from a single rep would let a disturbed calibration slice
      // inflate the calibrated ratio.
      Measurement m;
      double rate = 0.0;
      double calibration = 0.0;
      double norm_lo = 0.0;
      double norm_hi = 0.0;
      for (int rep = 0; rep < std::max(1, *reps); ++rep) {
        const Measurement candidate =
            measure_engine(engine, transitions, protocol, c.n, seed, cap);
        const double candidate_rate =
            candidate.seconds > 0
                ? static_cast<double>(candidate.interactions) /
                      candidate.seconds
                : 0.0;
        if (rep == 0 || candidate_rate > rate) {
          m = candidate;
          rate = candidate_rate;
        }
        calibration = std::max(calibration, candidate.calibration_rate());
        const double normalized =
            candidate_rate / candidate.calibration_rate();
        norm_lo = rep == 0 ? normalized : std::min(norm_lo, normalized);
        norm_hi = rep == 0 ? normalized : std::max(norm_hi, normalized);
      }
      // The spread of per-rep calibrated rates is the row's own noise
      // estimate; the regression gate widens its tolerance by it, so the
      // gate is tight exactly when the machine was quiet enough to earn it.
      const double rep_spread = norm_hi > 0.0 ? 1.0 - norm_lo / norm_hi : 0.0;
      rows.push_back(
          {c, engine_name(engine), m, rate, calibration, rep_spread});
      table.row(int{c.k}, c.n, engine_name(engine), m.interactions, m.seconds,
                m.stabilized ? "yes" : "no", rate / 1e6);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: agent/count pay per drawn pair, so they are clock-capped\n"
      "mid-trajectory at large n; jump skips null runs; batch additionally\n"
      "aggregates the dense phase in collision-free groups; sharded is the\n"
      "SoA/SIMD rebuild of batch.  Rates are honest per-engine averages over\n"
      "the trajectory each one executes.\n");

  // -- Sharded-scale: one deep trial at large n under an exact budget -------
  //
  // The regime the sharded engine exists for.  One trajectory, fixed
  // interaction budget (so every row does literally the same work), batch
  // baseline plus sharded at worker counts 1/2/4/8 with the production
  // parallel grain.  Each row's verdict fingerprint (final counts + totals)
  // must agree across reps AND across thread counts -- bit-determinism is
  // checked here in the shipping binary, not just in unit tests.
  const std::uint32_t scale_n = *smoke ? 4'000'000u : 100'000'000u;
  const std::uint64_t scale_budget = *smoke ? (1ULL << 25) : (1ULL << 28);
  constexpr ppk::pp::GroupId kScaleK = 3;
  std::vector<ScaleRow> scale_rows;
  bool scale_deterministic = true;
  if (!ppk::bench::interrupted()) {
    std::printf("\nsharded scale: k=%d n=%u budget=%llu simd=%s\n",
                int{kScaleK}, scale_n,
                static_cast<unsigned long long>(scale_budget),
                ppk::simd::active_name());
    const ppk::core::KPartitionProtocol protocol(kScaleK);
    const ppk::pp::TransitionTable transitions(protocol);
    ppk::pp::Counts initial(protocol.num_states(), 0);
    initial[protocol.initial_state()] = scale_n;
    const auto seed = static_cast<std::uint64_t>(*common.seed);
    const auto run_row = [&](const char* name, std::size_t threads,
                             auto make_sim) {
      ScaleRow row;
      row.engine = name;
      row.threads = threads;
      double norm_lo = 0.0;
      double norm_hi = 0.0;
      bool have_row = false;
      for (int rep = 0; rep < std::max(1, *reps); ++rep) {
        if (ppk::bench::interrupted()) return;
        const auto oracle =
            ppk::core::stable_pattern_oracle(protocol, scale_n);
        auto sim = make_sim();
        const Measurement candidate =
            measure_budget(sim, *oracle, scale_budget);
        const std::uint64_t fp = verdict_fingerprint(
            sim.counts(), sim.interactions(), candidate.effective);
        if (rep == 0) {
          row.fingerprint = fp;
        } else if (row.fingerprint != fp) {
          std::fprintf(
              stderr,
              "determinism violation: %s threads=%zu rep %d fingerprint "
              "%016llx != rep 0 %016llx\n",
              name, threads, rep, static_cast<unsigned long long>(fp),
              static_cast<unsigned long long>(row.fingerprint));
          scale_deterministic = false;
        }
        const double candidate_rate =
            candidate.seconds > 0
                ? static_cast<double>(candidate.interactions) /
                      candidate.seconds
                : 0.0;
        if (rep == 0 || candidate_rate > row.rate) {
          row.m = candidate;
          row.rate = candidate_rate;
        }
        row.calibration =
            std::max(row.calibration, candidate.calibration_rate());
        const double normalized =
            candidate_rate / candidate.calibration_rate();
        norm_lo = rep == 0 ? normalized : std::min(norm_lo, normalized);
        norm_hi = rep == 0 ? normalized : std::max(norm_hi, normalized);
        have_row = true;
      }
      if (!have_row) return;
      row.rep_spread = norm_hi > 0.0 ? 1.0 - norm_lo / norm_hi : 0.0;
      scale_rows.push_back(row);
      std::printf("  %-8s threads=%zu  %8.1f M/s  spread %.3f  verdict %016llx\n",
                  row.engine, row.threads, row.rate / 1e6, row.rep_spread,
                  static_cast<unsigned long long>(row.fingerprint));
    };
    run_row("batch", 1, [&] {
      return ppk::pp::BatchSimulator(transitions, initial, seed);
    });
    for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      if (ppk::bench::interrupted()) break;
      run_row("sharded", t, [&] {
        return ppk::pp::BatchShardedSimulator(transitions, initial, seed, t);
      });
    }
    // Thread invariance: every completed sharded row must reach the same
    // verdict; workers decide when shard work runs, never what it draws.
    const ScaleRow* first_sharded = nullptr;
    for (const ScaleRow& r : scale_rows) {
      if (std::string_view(r.engine) != "sharded") continue;
      if (first_sharded == nullptr) {
        first_sharded = &r;
      } else if (r.fingerprint != first_sharded->fingerprint) {
        std::fprintf(
            stderr,
            "determinism violation: sharded threads=%zu verdict %016llx != "
            "threads=%zu verdict %016llx\n",
            r.threads, static_cast<unsigned long long>(r.fingerprint),
            first_sharded->threads,
            static_cast<unsigned long long>(first_sharded->fingerprint));
        scale_deterministic = false;
      }
    }
  }

  if (!common.json->empty()) {
    // Atomic (temp + rename): an interrupted run cannot leave a truncated
    // report where the regression gate expects a baseline.
    ppk::io::AtomicFileWriter file(*common.json);
    ppk::io::JsonWriter json(file.stream());
    json.begin_object();
    json.member("schema", "ppk-bench-engines-v2");
    json.member("bench", "batch_throughput");
    json.member("git_rev", *git_rev);
    json.member("smoke", *smoke);
    // Which sampler kernels ran: "avx2" or "scalar" (runtime dispatch; the
    // forced-scalar CI leg sets PPK_NO_SIMD=1).  Verdict fingerprints are
    // bit-identical across dispatch, so this is provenance, not a gate key.
    json.member("simd", ppk::simd::active_name());
    // True when SIGINT cut the sweep short: the results array only covers
    // the points that completed, and gates must not treat it as a baseline.
    json.member("interrupted", ppk::bench::interrupted());
    json.member("wall_cap_seconds", cap);
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.member("reps", std::max(1, *reps));
    // Whether the observability hooks were compiled into the engines for
    // this run (no sink is ever attached here); the regression gate uses
    // this to decide when the <= 2% overhead check applies.
    json.key("observability");
    json.begin_object();
    json.member("compiled", PPK_OBS_ENABLED != 0);
    json.member("sink_attached", false);
    json.end_object();
    json.key("machine");
    ppk::bench::write_machine_metadata(json);
    // Sampler-setup amortization evidence: the shared log-factorial table
    // is built once (cold) and engine construction afterwards must be a
    // small fraction of it.  The bench already hard-fails on >= 0.5; the
    // gate re-checks the recorded number so a baseline can't hide it.
    json.key("sampler_setup");
    json.begin_object();
    json.member("cold_table_seconds", setup.cold_table_seconds);
    json.member("warm_engine_seconds", setup.warm_engine_seconds);
    json.member("warm_fraction", setup.warm_fraction);
    json.end_object();
    json.key("results");
    json.begin_array();
    for (const Row& r : rows) {
      json.begin_object();
      json.member("engine", r.engine);
      json.member("k", int{r.c.k});
      json.member("n", static_cast<std::uint64_t>(r.c.n));
      json.member("interactions", r.m.interactions);
      json.member("effective", r.m.effective);
      json.member("seconds", r.m.seconds);
      json.member("stabilized", r.m.stabilized);
      json.member("interactions_per_second", r.rate);
      // Best aggregate rate of the interleaved calibration slices across
      // reps; comparisons divide by it to cancel machine frequency drift.
      json.member("calibration_rate", r.calibration);
      // Fractional spread of per-rep calibrated rates: the measurement's
      // own uncertainty; the gate adds it to its tolerance.
      json.member("rep_spread", r.rep_spread);
      json.end_object();
    }
    json.end_array();
    // The deep single-trial block: exact-budget rows, so rates are
    // comparable across engines/threads within the report, and the verdict
    // fingerprints pin bit-determinism (hex strings -- JSON doubles cannot
    // carry 64 bits).
    json.key("sharded_scale");
    json.begin_object();
    json.member("k", int{kScaleK});
    json.member("n", static_cast<std::uint64_t>(scale_n));
    json.member("budget", scale_budget);
    json.member("seed", static_cast<std::int64_t>(*common.seed));
    json.member("deterministic", scale_deterministic);
    json.key("rows");
    json.begin_array();
    for (const ScaleRow& r : scale_rows) {
      char verdict[17];
      std::snprintf(verdict, sizeof verdict, "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      json.begin_object();
      json.member("engine", r.engine);
      json.member("threads", static_cast<std::uint64_t>(r.threads));
      json.member("interactions", r.m.interactions);
      json.member("effective", r.m.effective);
      json.member("seconds", r.m.seconds);
      json.member("stabilized", r.m.stabilized);
      json.member("interactions_per_second", r.rate);
      json.member("calibration_rate", r.calibration);
      json.member("rep_spread", r.rep_spread);
      json.member("fingerprint", verdict);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json.end_object();
    std::string error;
    if (!file.commit(&error)) {
      std::fprintf(stderr, "cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", common.json->c_str());
  }
  if (ppk::bench::interrupted()) {
    std::printf("\ninterrupted: %zu point(s) completed before SIGINT\n",
                rows.size());
    return 130;
  }
  if (!scale_deterministic) {
    std::fprintf(stderr, "sharded-scale determinism check FAILED\n");
    return 1;
  }
  return 0;
}
