// Ablation: agent-array engine vs count-vector engine.
//
// Both engines sample the identical interaction distribution (see
// count_simulator.hpp), so their stabilization-time statistics must agree;
// what differs is the cost model: the agent array is O(1) per interaction
// with O(n) memory, the count vector is O(|Q|) per interaction with O(|Q|)
// memory.  This bench reports statistical agreement and wall-clock
// throughput side by side, which is the data behind the engine choice
// documented in DESIGN.md.

#include <optional>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  ppk::Cli cli("ablation_engines",
               "Agent vs count vs jump vs batch engine: agreement + "
               "throughput.");
  ppk::bench::CommonFlags common(cli, /*default_trials=*/40);
  cli.parse(argc, argv);

  ppk::bench::print_header("Ablation: simulation engines",
                           "identical distribution, different cost models");

  std::optional<ppk::io::CsvFile> csv;
  if (!common.csv->empty()) {
    csv.emplace(*common.csv, std::vector<std::string>{
                                 "engine", "k", "n", "mean_interactions",
                                 "ci95", "interactions_per_second"});
  }

  ppk::analysis::Table table({"k", "n", "engine", "mean interactions",
                              "ci95", "M interactions/s"});
  struct Case {
    ppk::pp::GroupId k;
    std::uint32_t n;
  };
  for (const Case& c :
       {Case{4, 120}, Case{4, 480}, Case{8, 240}, Case{8, 960}}) {
    for (const auto engine :
         {ppk::pp::Engine::kAgentArray, ppk::pp::Engine::kCountVector,
          ppk::pp::Engine::kJump, ppk::pp::Engine::kBatch}) {
      auto options = common.experiment_options();
      options.engine = engine;
      const auto r = ppk::analysis::measure_kpartition(c.k, c.n, options);
      const double total_interactions =
          r.interactions.mean * static_cast<double>(r.trials);
      const double per_second =
          r.wall_seconds > 0 ? total_interactions / r.wall_seconds : 0.0;
      const char* name = engine == ppk::pp::Engine::kAgentArray
                             ? "agent-array"
                             : engine == ppk::pp::Engine::kCountVector
                                   ? "count"
                                   : engine == ppk::pp::Engine::kJump
                                         ? "jump"
                                         : "batch";
      table.row(int{c.k}, c.n, name, r.interactions.mean, r.interactions.ci95,
                per_second / 1e6);
      if (csv) {
        csv->row(name, int{c.k}, c.n, r.interactions.mean, r.interactions.ci95,
                 per_second);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: all four engines' mean interaction counts agree within\n"
      "their confidence intervals (same distribution, different RNG\n"
      "streams).  Throughput: agent-array pays O(1) per drawn pair, count\n"
      "pays O(log |Q|) per drawn pair, jump pays O(|Q|) per *effective*\n"
      "pair and skips null runs geometrically, batch aggregates whole\n"
      "collision-free groups -- amortized o(1) per interaction, which\n"
      "only dominates at populations far beyond this table's (see\n"
      "batch_throughput for the at-scale numbers).\n");
  return 0;
}
